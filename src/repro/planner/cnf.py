"""Conjunctive-normal-form predicate analysis.

SmartIndex hinges on this module: "leaf servers will transform the
predicates in query sub-plans into conjunctive forms and check if there
exist a SmartIndex for each data block" (§IV-C-3).  The user-log analysis
of §IV-A likewise compares predicates *after* conversion to conjunctive
form.

The pipeline:

1. :func:`to_nnf` pushes NOT down to the leaves.  Negated comparisons
   fold into their complementary operator (``NOT c2 <= 5`` → ``c2 > 5``,
   the exact Fig 7 example); only ``NOT CONTAINS`` keeps a negation flag.
2. :func:`to_cnf` distributes OR over AND into a list of clauses.
3. Each clause disjunct is classified as an :class:`AtomicPredicate`
   (``column OP literal`` — indexable) or left as a residual expression.

:class:`AtomicPredicate.key` is the canonical identity used by the index
cache and by the query-similarity analysis: two textual variants of the
same predicate (``5 < c2`` vs ``c2 > 5``) share one key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import PlanError
from repro.planner.expressions import comparison_implies, contains_implies, string_contains
from repro.sql.ast import (
    NEGATED,
    BinaryOp,
    BinaryOperator,
    Column,
    Expr,
    Literal,
    Negate,
    NotOp,
)

_COMPLEMENT = dict(NEGATED)  # EQ<->NE, LT<->GE, LE<->GT

_FLIP = {
    BinaryOperator.LT: BinaryOperator.GT,
    BinaryOperator.LE: BinaryOperator.GE,
    BinaryOperator.GT: BinaryOperator.LT,
    BinaryOperator.GE: BinaryOperator.LE,
    BinaryOperator.EQ: BinaryOperator.EQ,
    BinaryOperator.NE: BinaryOperator.NE,
}

_ATOMIC_OPS = frozenset(
    {
        BinaryOperator.EQ,
        BinaryOperator.NE,
        BinaryOperator.LT,
        BinaryOperator.LE,
        BinaryOperator.GT,
        BinaryOperator.GE,
        BinaryOperator.CONTAINS,
    }
)


@dataclass(frozen=True)
class AtomicPredicate:
    """Canonical ``column OP literal`` predicate.

    ``negated`` is only ever True for CONTAINS (ordered comparisons fold
    negation into the complementary operator instead).
    """

    column: str
    op: BinaryOperator
    value: Union[int, float, str, bool]
    negated: bool = False

    def __post_init__(self) -> None:
        if self.op not in _ATOMIC_OPS:
            raise PlanError(f"{self.op} is not an atomic comparison")
        if self.negated and self.op is not BinaryOperator.CONTAINS:
            raise PlanError("only CONTAINS predicates carry a negation flag")

    @property
    def key(self) -> str:
        """Cache identity: equal keys ⇔ equal predicate semantics."""
        prefix = "NOT " if self.negated else ""
        return f"{prefix}{self.column} {self.op.value} {self.value!r}"

    @property
    def base(self) -> "AtomicPredicate":
        """The un-negated predicate whose bitvector the index stores."""
        if not self.negated:
            return self
        return AtomicPredicate(self.column, self.op, self.value, negated=False)

    def complement(self) -> "AtomicPredicate":
        """The predicate whose bitvector is the bit-NOT of this one's.

        This is Fig 7's rewrite: a stored index for ``c2 > 5`` answers
        ``c2 <= 5`` through one in-memory NOT.
        """
        if self.op is BinaryOperator.CONTAINS:
            return AtomicPredicate(self.column, self.op, self.value, negated=not self.negated)
        return AtomicPredicate(self.column, _COMPLEMENT[self.op], self.value)

    def implies(self, other: "AtomicPredicate") -> bool:
        """True iff every row satisfying this atom satisfies ``other``.

        Sound under numpy comparison semantics (NaN fails every ordered
        comparison and ``==``, satisfies ``!=``), so a cached superset
        vector found through this test is a valid candidate mask for a
        residual scan.  Conservative: returns False when unsure.
        """
        if self.column != other.column:
            return False
        if self.op is BinaryOperator.CONTAINS or other.op is BinaryOperator.CONTAINS:
            if self.op is not other.op or self.negated or other.negated:
                return False
            return contains_implies(str(self.value), str(other.value))
        return comparison_implies(self.op, self.value, other.op, other.value)

    def evaluate(self, column_values: np.ndarray) -> np.ndarray:
        """Evaluate over one column array; returns a boolean vector."""
        op = self.op
        if op is BinaryOperator.CONTAINS:
            result = string_contains(column_values, str(self.value))
            return ~result if self.negated else result
        if op is BinaryOperator.EQ:
            return column_values == self.value
        if op is BinaryOperator.NE:
            return column_values != self.value
        if op is BinaryOperator.LT:
            return column_values < self.value
        if op is BinaryOperator.LE:
            return column_values <= self.value
        if op is BinaryOperator.GT:
            return column_values > self.value
        return column_values >= self.value

    def to_expr(self) -> Expr:
        expr: Expr = BinaryOp(self.op, Column(self.column), Literal(self.value))
        return NotOp(expr) if self.negated else expr

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class Clause:
    """One CNF clause: a disjunction of atoms and residual expressions.

    A clause is *indexable* iff it has no residuals — then its bitvector
    is the OR of its atoms' vectors.
    """

    atoms: Tuple[AtomicPredicate, ...]
    residuals: Tuple[Expr, ...] = ()

    @property
    def is_indexable(self) -> bool:
        return not self.residuals and bool(self.atoms)

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(sorted({a.column for a in self.atoms}))

    def to_expr(self) -> Expr:
        parts: List[Expr] = [a.to_expr() for a in self.atoms] + list(self.residuals)
        if not parts:
            raise PlanError("empty clause")
        out = parts[0]
        for p in parts[1:]:
            out = BinaryOp(BinaryOperator.OR, out, p)
        return out

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(r) for r in self.residuals]
        return "(" + " OR ".join(parts) + ")"


@dataclass
class ConjunctiveForm:
    """A WHERE condition as AND-of-clauses."""

    clauses: List[Clause] = field(default_factory=list)

    @property
    def indexable_clauses(self) -> List[Clause]:
        return [c for c in self.clauses if c.is_indexable]

    @property
    def atoms(self) -> List[AtomicPredicate]:
        """All atoms across all clauses (for similarity statistics)."""
        return [a for c in self.clauses for a in c.atoms]

    def predicate_keys(self) -> List[str]:
        return [a.key for a in self.atoms]

    def to_expr(self) -> Optional[Expr]:
        if not self.clauses:
            return None
        out = self.clauses[0].to_expr()
        for c in self.clauses[1:]:
            out = BinaryOp(BinaryOperator.AND, out, c.to_expr())
        return out

    def __str__(self) -> str:
        return " AND ".join(str(c) for c in self.clauses) if self.clauses else "TRUE"


# -- normalization ------------------------------------------------------------


def extract_atom(expr: Expr, negated: bool = False) -> Optional[AtomicPredicate]:
    """Recognize ``column OP literal`` (either operand order).

    Returns None when the expression isn't atomic (arithmetic on the
    column, column-vs-column comparison, ...).
    """
    if isinstance(expr, NotOp):
        return extract_atom(expr.operand, negated=not negated)
    if not isinstance(expr, BinaryOp) or expr.op not in _ATOMIC_OPS:
        return None
    left, right, op = expr.left, expr.right, expr.op
    left_lit = _literal_value(left)
    right_lit = _literal_value(right)
    if isinstance(left, Column) and right_lit is not None:
        atom = AtomicPredicate(left.name, op, right_lit)
    elif isinstance(right, Column) and left_lit is not None and op is not BinaryOperator.CONTAINS:
        atom = AtomicPredicate(right.name, _FLIP[op], left_lit)
    else:
        return None
    if negated:
        atom = atom.complement()
    return atom


def _literal_value(expr: Expr):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Negate) and isinstance(expr.operand, Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
    return None


def to_nnf(expr: Expr, negated: bool = False) -> Expr:
    """Push negation to the leaves (negation-normal form)."""
    if isinstance(expr, NotOp):
        return to_nnf(expr.operand, not negated)
    if isinstance(expr, BinaryOp) and expr.op in (BinaryOperator.AND, BinaryOperator.OR):
        op = expr.op
        if negated:
            op = BinaryOperator.OR if op is BinaryOperator.AND else BinaryOperator.AND
        return BinaryOp(op, to_nnf(expr.left, negated), to_nnf(expr.right, negated))
    if not negated:
        return expr
    atom = extract_atom(expr, negated=True)
    if atom is not None:
        return atom.to_expr()
    return NotOp(expr)  # opaque leaf: keep the NOT


#: Clause-count cap for OR-over-AND distribution; beyond it the input is
#: kept as a single residual clause rather than exploding.
MAX_CNF_CLAUSES = 64


def to_cnf(expr: Optional[Expr]) -> ConjunctiveForm:
    """Convert a boolean expression to conjunctive normal form."""
    if expr is None:
        return ConjunctiveForm([])
    nnf = to_nnf(expr)
    raw_clauses = _distribute(nnf)
    if raw_clauses is None:
        # Distribution blew past the cap; degrade to one residual clause.
        return ConjunctiveForm([Clause(atoms=(), residuals=(nnf,))])
    clauses = []
    for disjuncts in raw_clauses:
        atoms: List[AtomicPredicate] = []
        residuals: List[Expr] = []
        for d in disjuncts:
            atom = extract_atom(d)
            if atom is not None:
                atoms.append(atom)
            else:
                residuals.append(d)
        clauses.append(Clause(tuple(atoms), tuple(residuals)))
    return ConjunctiveForm(_dedupe(clauses))


def _distribute(expr: Expr) -> Optional[List[List[Expr]]]:
    """Return CNF as a list of clauses (each a list of disjunct leaves),
    or None if the clause count would exceed :data:`MAX_CNF_CLAUSES`."""
    if isinstance(expr, BinaryOp) and expr.op is BinaryOperator.AND:
        left = _distribute(expr.left)
        right = _distribute(expr.right)
        if left is None or right is None:
            return None
        merged = left + right
        return merged if len(merged) <= MAX_CNF_CLAUSES else None
    if isinstance(expr, BinaryOp) and expr.op is BinaryOperator.OR:
        left = _distribute(expr.left)
        right = _distribute(expr.right)
        if left is None or right is None:
            return None
        product = [lc + rc for lc in left for rc in right]
        return product if len(product) <= MAX_CNF_CLAUSES else None
    return [[expr]]


def _dedupe(clauses: Sequence[Clause]) -> List[Clause]:
    seen = set()
    out: List[Clause] = []
    for c in clauses:
        key = (tuple(sorted(a.key for a in c.atoms)), tuple(str(r) for r in c.residuals))
        if key not in seen:
            seen.add(key)
            out.append(c)
    return out
