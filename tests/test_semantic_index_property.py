"""Semantic SmartIndex correctness properties and cache-policy tests (S49).

The semantic layer's contract is that every *exact* answer it produces —
derived-by-composition bitmaps and residual scatter-backs — is
bit-identical to evaluating the predicate against the data, NaN rows
included.  Hypothesis drives columns with NaNs, empty intervals (values
matching no row) and mixed cached-op sets against that contract; the
one documented exception, Fig 7 complement rewrites of *ordered* ops on
NaN rows, is pinned as-is (seed behaviour, unchanged by this layer).

Deterministic tests below cover the benefit-per-byte cache policy
(eviction order, admission rejection, probation→protected promotion),
the ``_by_predicate`` prefer/unprefer fast path, the advisor's
observed-benefit input, and the executor's fractional I/O charging.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DataType, FeisuCluster, FeisuConfig, LeafConfig, Schema
from repro.errors import IndexError_
from repro.index.advisor import IndexAdvisor
from repro.index.smartindex import SmartIndexManager
from repro.columnar.table import Catalog
from repro.obs.trace import Span
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
from repro.sql.ast import BinaryOperator

settings.register_profile("semantic", deadline=None, max_examples=60)
settings.load_profile("semantic")

OPS = (
    BinaryOperator.LT,
    BinaryOperator.LE,
    BinaryOperator.GT,
    BinaryOperator.GE,
    BinaryOperator.EQ,
    BinaryOperator.NE,
)
ORDERED = (BinaryOperator.LT, BinaryOperator.LE, BinaryOperator.GT, BinaryOperator.GE)

#: Small shared value domain so cached and probed atoms collide often
#: (including on values matching zero rows — empty intervals).
values = st.integers(min_value=-2, max_value=6)
plain_columns = st.lists(
    st.floats(min_value=-4, max_value=8, allow_nan=False), min_size=1, max_size=48
).map(lambda xs: np.array(xs, dtype=np.float64))
nan_columns = st.lists(
    st.one_of(st.floats(min_value=-4, max_value=8, allow_nan=False), st.just(float("nan"))),
    min_size=1,
    max_size=48,
).map(lambda xs: np.array(xs, dtype=np.float64))


def _manager(col, cached):
    mgr = SmartIndexManager(compress=False, semantic=True)
    for i, (op, v) in enumerate(cached):
        atom = AtomicPredicate("c", op, v)
        mgr.insert("b", atom, atom.evaluate(col), now=float(i) * 1e-3)
    return mgr


def _single(atom):
    return ConjunctiveForm([Clause((atom,))])


# -- Hypothesis: semantic answers vs. scalar ground truth ------------------


@given(
    col=plain_columns,
    cached=st.lists(st.tuples(st.sampled_from(OPS[:5]), values), max_size=8),
    probe_op=st.sampled_from(OPS),
    probe_value=values,
)
def test_full_cover_bit_identical_without_nan(col, cached, probe_op, probe_value):
    """Without NaN every path — exact, complement, derived — is exact."""
    mgr = _manager(col, cached)
    probe = AtomicPredicate("c", probe_op, probe_value)
    mask, missing, residuals = mgr.cover_semantic("b", _single(probe), now=1.0)
    if mask is not None and not missing and not residuals:
        np.testing.assert_array_equal(mask.to_bool_array(), probe.evaluate(col))


@given(
    col=nan_columns,
    cached_ops=st.sets(st.sampled_from(ORDERED), min_size=2),
    v=values,
)
def test_derived_eq_bit_identical_with_nan(col, cached_ops, v):
    """EQ derived from positively stored ordered vectors is NaN-exact.

    Only ordered atoms are cached, so an EQ probe cannot be an exact or
    complement hit — any returned mask came from bitmap composition.
    """
    mgr = _manager(col, [(op, v) for op in cached_ops])
    probe = AtomicPredicate("c", BinaryOperator.EQ, v)
    before = mgr.stats.subsumption_hits
    mask, missing, residuals = mgr.cover_semantic("b", _single(probe), now=1.0)
    if mask is not None and not missing and not residuals:
        assert mgr.stats.subsumption_hits == before + 1
        np.testing.assert_array_equal(mask.to_bool_array(), probe.evaluate(col))


@given(col=nan_columns, v=values, widen=st.integers(min_value=0, max_value=4))
def test_residual_candidate_superset_and_scatter_exact(col, v, widen):
    """Candidate masks never drop a qualifying row, and evaluating the
    residual on candidate rows then scattering into zeros reproduces the
    full-column evaluation bit-for-bit (the executor's partial scan)."""
    wide = AtomicPredicate("c", BinaryOperator.LT, v + widen)
    mgr = _manager(col, [(BinaryOperator.LT, v + widen)])
    probe = AtomicPredicate("c", BinaryOperator.LT, v)
    mask, missing, residuals = mgr.cover_semantic("b", _single(probe), now=1.0)
    truth = probe.evaluate(col)
    if probe.key == wide.key:
        return  # widen == 0: plain exact hit, covered elsewhere
    assert mask is None
    if not residuals:
        # Candidate too wide to pay off — the clause fell back to a scan.
        assert len(missing) == 1
        return
    (res,) = residuals
    cand = res.mask.to_bool_array()
    assert not np.any(truth & ~cand)  # superset: no true row missed
    assert res.fraction == pytest.approx(cand.sum() / len(col))
    idx = np.flatnonzero(cand)
    scattered = np.zeros(len(col), dtype=bool)
    scattered[idx] = probe.evaluate(col[idx])
    np.testing.assert_array_equal(scattered, truth)


@given(col=nan_columns, v=values)
def test_complement_interaction_with_nan(col, v):
    """NE via the EQ complement is NaN-exact; ordered complements keep
    the seed's documented Fig 7 semantics (the stored vector's bit-NOT),
    which intentionally differs from scalar evaluation on NaN rows."""
    eq = AtomicPredicate("c", BinaryOperator.EQ, v)
    mgr = _manager(col, [(BinaryOperator.EQ, v)])
    ne = AtomicPredicate("c", BinaryOperator.NE, v)
    mask, missing, residuals = mgr.cover_semantic("b", _single(ne), now=1.0)
    assert mask is not None and not missing and not residuals
    np.testing.assert_array_equal(mask.to_bool_array(), ne.evaluate(col))

    mgr2 = _manager(col, [(BinaryOperator.GT, v)])
    le = AtomicPredicate("c", BinaryOperator.LE, v)
    mask2, missing2, residuals2 = mgr2.cover_semantic("b", _single(le), now=1.0)
    assert mask2 is not None and not missing2 and not residuals2
    gt = AtomicPredicate("c", BinaryOperator.GT, v)
    np.testing.assert_array_equal(mask2.to_bool_array(), ~gt.evaluate(col))


@given(
    col=nan_columns,
    cached=st.lists(st.tuples(st.sampled_from(OPS[:5]), values), max_size=8),
    probe_op=st.sampled_from(OPS),
    probe_value=values,
)
def test_materialized_derivations_stay_exact(col, cached, probe_op, probe_value):
    """Re-probing after derivations/materializations must agree with the
    first answer: inserted derived vectors are ordinary exact entries."""
    mgr = _manager(col, cached)
    probe = AtomicPredicate("c", probe_op, probe_value)
    first = mgr.cover_semantic("b", _single(probe), now=1.0)
    second = mgr.cover_semantic("b", _single(probe), now=2.0)
    if first[0] is not None and not first[1] and not first[2]:
        assert second[0] is not None and not second[1] and not second[2]
        np.testing.assert_array_equal(
            first[0].to_bool_array(), second[0].to_bool_array()
        )


def test_empty_cache_and_flag_gate():
    mgr = SmartIndexManager(semantic=True)
    probe = AtomicPredicate("c", BinaryOperator.LT, 3)
    mask, missing, residuals = mgr.cover_semantic("b", _single(probe), now=0.0)
    assert mask is None and residuals == [] and len(missing) == 1

    plain = SmartIndexManager()
    with pytest.raises(IndexError_):
        plain.cover_semantic("b", _single(probe), now=0.0)


def test_cover_semantic_tags_span():
    col = np.arange(32, dtype=np.float64)
    mgr = _manager(col, [(BinaryOperator.LT, 6)])
    span = Span("index_probe", 0.0)
    probe = AtomicPredicate("c", BinaryOperator.LT, 4)
    mgr.cover_semantic("b", _single(probe), now=1.0, span=span)
    for key in ("atom_hits", "complement_hits", "atom_misses",
                "subsumption_hits", "residual_clauses"):
        assert key in span.tags
    assert span.tags["residual_clauses"] == 1
    assert 0.0 < span.tags["residual_fraction"] <= 1.0


# -- cost-aware cache management ------------------------------------------


def _insert(mgr, block, column, v, mask, now, saved_s):
    atom = AtomicPredicate(column, BinaryOperator.LT, v)
    mgr.insert(block, atom, mask, now=now, saved_s=saved_s)
    return atom


def test_eviction_takes_lowest_benefit_per_byte():
    col = np.arange(256, dtype=np.float64)
    mask = col < 100
    mgr = SmartIndexManager(memory_budget_bytes=1, compress=False, semantic=True)
    mgr.memory_budget_bytes = 2 * (32 + 96) + 10  # room for ~2 entries
    cheap = _insert(mgr, "b", "c", 1, mask, 0.0, saved_s=0.001)
    rich = _insert(mgr, "b", "c", 2, mask, 0.1, saved_s=1.0)
    _insert(mgr, "b", "c", 3, mask, 0.2, saved_s=0.5)
    keys = {e.predicate_key for e in mgr.entries_for_block("b")}
    assert cheap.key not in keys  # lowest saved_s per byte went first
    assert rich.key in keys
    assert mgr.stats.evictions_cost >= 1


def test_admission_rejects_worthless_insert_into_hot_cache():
    col = np.arange(256, dtype=np.float64)
    mask = col < 100
    mgr = SmartIndexManager(memory_budget_bytes=1, compress=False, semantic=True)
    mgr.memory_budget_bytes = 2 * (32 + 96) + 10
    a = _insert(mgr, "b", "c", 1, mask, 0.0, saved_s=1.0)
    b = _insert(mgr, "b", "c", 2, mask, 0.1, saved_s=1.0)
    # Reuse both so they out-score any fresh entry.
    mgr.lookup_atom("b", a, now=0.2)
    mgr.lookup_atom("b", b, now=0.2)
    junk = _insert(mgr, "b", "c", 3, mask, 0.3, saved_s=1e-9)
    keys = {e.predicate_key for e in mgr.entries_for_block("b")}
    assert junk.key not in keys  # never displaced a proven entry
    assert {a.key, b.key} <= keys
    assert mgr.stats.admission_rejects >= 1


def test_probation_promotion_is_scan_resistant():
    col = np.arange(256, dtype=np.float64)
    mask = col < 100
    mgr = SmartIndexManager(memory_budget_bytes=1, compress=False, semantic=True)
    mgr.memory_budget_bytes = 2 * (32 + 96) + 10
    touched = _insert(mgr, "b", "c", 1, mask, 0.0, saved_s=0.5)
    untouched = _insert(mgr, "b", "c", 2, mask, 0.1, saved_s=0.5)
    mgr.lookup_atom("b", touched, now=0.2)  # promote probation → protected
    _insert(mgr, "b", "c", 3, mask, 0.3, saved_s=0.5)
    keys = {e.predicate_key for e in mgr.entries_for_block("b")}
    assert touched.key in keys
    assert untouched.key not in keys  # the one-touch scan victim


def test_prefer_unprefer_uses_secondary_index():
    col = np.arange(64, dtype=np.float64)
    mgr = SmartIndexManager(compress=False, semantic=True)
    atom = AtomicPredicate("c", BinaryOperator.LT, 9)
    for block in ("b0", "b1", "b2"):
        mgr.insert(block, atom, col < 9, now=0.0)
    other = AtomicPredicate("c", BinaryOperator.LT, 11)
    mgr.insert("b0", other, col < 11, now=0.0)
    mgr.prefer_predicate(atom.key)
    assert all(e.preferred for b in ("b0", "b1", "b2")
               for e in mgr.entries_for_block(b) if e.predicate_key == atom.key)
    assert not any(e.preferred for e in mgr.entries_for_block("b0")
                   if e.predicate_key == other.key)
    mgr.unprefer_predicate(atom.key)
    assert not any(e.preferred for b in ("b0", "b1", "b2")
                   for e in mgr.entries_for_block(b))


def test_preferred_entries_survive_cost_eviction():
    col = np.arange(256, dtype=np.float64)
    mask = col < 100
    mgr = SmartIndexManager(memory_budget_bytes=1, compress=False, semantic=True)
    mgr.memory_budget_bytes = 2 * (32 + 96) + 10
    pinned = _insert(mgr, "b", "c", 1, mask, 0.0, saved_s=1e-9)
    mgr.prefer_predicate(pinned.key)
    for i, v in enumerate((2, 3, 4, 5)):
        _insert(mgr, "b", "c", v, mask, 0.1 * (i + 1), saved_s=1.0)
    keys = {e.predicate_key for e in mgr.entries_for_block("b")}
    assert pinned.key in keys  # preference trumps its terrible score


def test_benefit_snapshot_feeds_advisor_ranking():
    col = np.arange(128, dtype=np.float64)
    mgr = SmartIndexManager(compress=False, semantic=True)
    hot = _insert(mgr, "b", "c", 5, col < 5, 0.0, saved_s=0.25)
    _insert(mgr, "b", "c", 9, col < 9, 0.0, saved_s=0.25)
    for _ in range(4):
        mgr.lookup_atom("b", hot, now=1.0)
    snapshot = mgr.benefit_snapshot()
    assert snapshot[hot.key] > 0.0

    class Entry:
        tables = ("T",)

        def __init__(self, key):
            self.predicate_keys = (key,)

    advisor = IndexAdvisor(Catalog())
    history = [Entry(hot.key)] * 3 + [Entry("c < 9")] * 3
    ranked = advisor.recommend(history, observed=snapshot)
    assert ranked[0].predicate_key == hot.key
    assert ranked[0].observed_benefit_s == pytest.approx(snapshot[hot.key])


# -- executor integration: fractional I/O charging -------------------------


def test_residual_scan_charges_fractional_io_through_cluster():
    def build(semantic):
        cfg = FeisuConfig(
            datacenters=1, racks_per_datacenter=1, nodes_per_rack=4,
            leaf=LeafConfig(enable_smartindex=True, index_semantic=semantic),
        )
        cluster = FeisuCluster(cfg)
        n = 4000
        rng = np.random.default_rng(7)
        cluster.load_table(
            "T",
            Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
            {"a": rng.integers(0, 50, n), "b": rng.random(n)},
            storage="storage-a",
            block_rows=800,
            scale_factor=1000.0,
        )
        return cluster

    wide, tight = "SELECT COUNT(*) FROM T WHERE a < 10", "SELECT COUNT(*) FROM T WHERE a < 7"
    plain = build(semantic=False)
    plain.query(wide)
    full = plain.query_job(tight).stats.io_bytes_modeled

    sem = build(semantic=True)
    sem.query(wide)
    partial = sem.query_job(tight).stats.io_bytes_modeled
    stats = sem.aggregate_index_stats()
    assert stats.residual_hits > 0
    assert partial < full  # candidate-mask scan reads a fraction of the column
    # Exactness through the whole stack: same answer both ways.
    assert plain.query(tight).rows() == sem.query(tight).rows()
