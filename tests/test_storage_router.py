"""Common storage layer: prefix routing + SSO enforcement (§III-C)."""

import pytest

from repro.errors import AccessDeniedError, PathError
from repro.security.auth import SSOAuthority
from repro.sim.netmodel import NodeAddress, TopologySpec
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS, FatmanFS, LocalFS

NODES = TopologySpec(2, 2, 4).addresses()


def _router(with_auth=False):
    authority = SSOAuthority() if with_auth else None
    router = StorageRouter(authority)
    local = LocalFS(NODES)
    hdfs = DistributedFS(NODES)
    fatman = FatmanFS(NODES)
    router.register(local, default=True)
    router.register(hdfs)
    router.register(fatman)
    return router, authority, local, hdfs, fatman


def test_prefix_routing():
    router, _, local, hdfs, fatman = _router()
    assert router.resolve("/hdfs/a/b") == (hdfs, "/a/b")
    assert router.resolve("/ffs/x") == (fatman, "/x")
    # unrecognized prefix activates the local filesystem by default
    assert router.resolve("/data/logs/f1") == (local, "/data/logs/f1")


def test_relative_path_rejected():
    router, *_ = _router()
    with pytest.raises(PathError):
        router.resolve("no/slash")


def test_duplicate_scheme_rejected():
    router, _, _, hdfs, _ = _router()
    with pytest.raises(PathError):
        router.register(DistributedFS(NODES))


def test_unknown_prefix_without_default():
    router = StorageRouter()
    router.register(DistributedFS(NODES))
    with pytest.raises(PathError, match="no plugin"):
        router.resolve("/plain/file")


def test_write_read_round_trip_through_router():
    router, *_ = _router()
    router.write("/hdfs/t/block0", b"columnar-bytes")
    assert router.read("/hdfs/t/block0") == b"columnar-bytes"
    assert router.exists("/hdfs/t/block0")
    assert not router.exists("/hdfs/t/missing")
    assert router.size("/hdfs/t/block0") == 14
    assert len(router.locations("/hdfs/t/block0")) == 3


def test_full_path_inverse_of_resolve():
    router, _, local, hdfs, _ = _router()
    full = router.full_path(hdfs, "/t/b0")
    assert full == "/hdfs/t/b0"
    system, inner = router.resolve(full)
    assert system is hdfs and inner == "/t/b0"
    with pytest.raises(PathError):
        router.full_path(hdfs, "rel")


def test_sso_domain_enforcement():
    router, authority, _, hdfs, fatman = _router(with_auth=True)
    hdfs.write("/f", b"x")
    ok_cred = authority.issue("alice", [hdfs.domain])
    router.read("/hdfs/f", cred=ok_cred)  # allowed

    wrong_domain = authority.issue("alice", [fatman.domain])
    with pytest.raises(AccessDeniedError, match="lacks SSO access"):
        router.read("/hdfs/f", cred=wrong_domain)

    with pytest.raises(AccessDeniedError, match="requires a credential"):
        router.read("/hdfs/f")


def test_forged_credential_rejected():
    router, authority, _, hdfs, _ = _router(with_auth=True)
    hdfs.write("/f", b"x")
    cred = authority.issue("mallory", [hdfs.domain])
    forged = type(cred)(
        user="mallory",
        domains=frozenset([hdfs.domain, "extra-domain"]),  # claims not signed
        issued_at=cred.issued_at,
        expires_at=cred.expires_at,
        token=cred.token,
    )
    with pytest.raises(AccessDeniedError, match="verification"):
        router.read("/hdfs/f", cred=forged)


def test_empty_prefix_rejected():
    router, *_ = _router()
    # "//foo" silently routed to the default FS made a typo'd scheme
    # unreachable forever; it must be a routing error instead.
    with pytest.raises(PathError, match="empty scheme"):
        router.resolve("//foo")
    with pytest.raises(PathError, match="empty scheme"):
        router.resolve("//hdfs/a/b")


def test_accessors_consistent_on_malformed_path():
    router, *_ = _router()
    # exists() used to swallow the routing error and answer False while
    # size()/locations() raised; all three must now agree.
    for accessor in (router.exists, router.size, router.locations):
        with pytest.raises(PathError):
            accessor("//foo")
        with pytest.raises(PathError):
            accessor("relative/path")


def test_exists_false_only_for_resolvable_missing_path():
    router, *_ = _router()
    assert not router.exists("/hdfs/nope")
    router.write("/hdfs/nope", b"x")
    assert router.exists("/hdfs/nope")


def test_add_replica_idempotent():
    _, _, _, hdfs, _ = _router()
    hdfs.write("/f", b"data")
    holders = hdfs.locations("/f")
    extra = next(n for n in NODES if n not in holders)
    assert hdfs.add_replica("/f", extra)
    assert not hdfs.add_replica("/f", extra)  # second add is a no-op
    assert hdfs.locations("/f").count(extra) == 1
    with pytest.raises(PathError):
        hdfs.add_replica("/missing", extra)


def test_expired_credential_rejected():
    router, authority, _, hdfs, _ = _router(with_auth=True)
    hdfs.write("/f", b"x")
    cred = authority.issue("bob", [hdfs.domain], now=0.0, ttl_s=10.0)
    router.read("/hdfs/f", cred=cred, now=5.0)
    with pytest.raises(AccessDeniedError, match="expired"):
        router.read("/hdfs/f", cred=cred, now=20.0)
