"""Unit tests for device cost models and counted resources."""

import pytest

from repro.sim.events import SimulationError, Simulator
from repro.sim.resources import Cpu, Device, Disk, Nic, Resource, Ssd


def test_device_serializes_fifo():
    sim = Simulator()
    dev = Device(sim, "d")
    done = []
    dev.service(2.0).add_callback(lambda e: done.append(sim.now))
    dev.service(3.0).add_callback(lambda e: done.append(sim.now))
    sim.run()
    assert done == [2.0, 5.0]  # second request queues behind the first


def test_device_idle_gap_not_charged():
    sim = Simulator()
    dev = Device(sim, "d")
    dev.service(1.0)
    ends = []
    # A request issued at t=10, after the device went idle, starts fresh.
    sim.schedule(10.0, lambda: dev.service(1.0).add_callback(lambda e: ends.append(sim.now)))
    sim.run()
    assert ends == [11.0]


def test_device_negative_duration_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Device(sim, "d").service(-1.0)


def test_disk_read_time_includes_seek_and_bandwidth():
    sim = Simulator()
    disk = Disk(sim, bandwidth_bps=100.0, seek_s=0.5)
    assert disk.read_time(200) == pytest.approx(0.5 + 2.0)
    ev = disk.read(200)
    sim.run_until_complete(ev)
    assert sim.now == pytest.approx(2.5)
    assert disk.bytes_read == 200


def test_ssd_is_faster_than_disk():
    sim = Simulator()
    disk, ssd = Disk(sim), Ssd(sim)
    assert ssd.read_time(10**7) < disk.read_time(10**7)


def test_nic_transmit_time():
    sim = Simulator()
    nic = Nic(sim, bandwidth_bps=1000.0, latency_s=0.1)
    assert nic.transmit_time(500) == pytest.approx(0.6)


def test_cpu_lanes_run_in_parallel():
    sim = Simulator()
    cpu = Cpu(sim, cores=2, ops_per_sec=100.0)
    done = []
    cpu.compute(100).add_callback(lambda e: done.append(sim.now))
    cpu.compute(100).add_callback(lambda e: done.append(sim.now))
    cpu.compute(100).add_callback(lambda e: done.append(sim.now))
    sim.run()
    # two lanes: first two finish at 1.0, third queues to 2.0
    assert done == [1.0, 1.0, 2.0]
    assert cpu.ops_executed == 300


def test_cpu_requires_at_least_one_core():
    with pytest.raises(SimulationError):
        Cpu(Simulator(), cores=0)


def test_utilization_tracks_busy_fraction():
    sim = Simulator()
    dev = Device(sim, "d")
    dev.service(1.0)
    sim.run()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert dev.utilization() == pytest.approx(0.5)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a, b, c = res.request(), res.request(), res.request()
    sim.run()
    assert a.triggered and b.triggered and not c.triggered
    assert res.queue_length == 1
    res.release()
    sim.run()
    assert c.triggered


def test_resource_release_on_idle_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_resize_grants_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    waiting = res.request()
    sim.run()
    assert not waiting.triggered
    res.resize(2)
    sim.run()
    assert waiting.triggered


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, 0)
    res = Resource(sim, 1)
    with pytest.raises(SimulationError):
        res.resize(0)
