"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.events import Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
    sim.schedule(3.0, lambda: seen.append(("c", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_stops_clock_at_limit():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_event_value_and_callbacks():
    sim = Simulator()
    ev = sim.event("e")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    sim.run()
    assert got == [42]
    assert ev.ok and ev.value == 42


def test_event_double_resolution_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_callback_after_trigger_fires_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["x"]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_timeout_fires_at_right_time():
    sim = Simulator()
    ev = sim.timeout(5.0, value="done")
    assert sim.run_until_complete(ev) == "done"
    assert sim.now == 5.0


def test_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(1.5)
        trace.append(sim.now)
        yield sim.timeout(2.5)
        trace.append(sim.now)
        return "finished"

    p = sim.process(proc())
    assert sim.run_until_complete(p) == "finished"
    assert trace == [0.0, 1.5, 4.0]


def test_process_join():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 7

    def parent():
        value = yield sim.process(child())
        return value * 2

    assert sim.run_until_complete(sim.process(parent())) == 14


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_until_complete(sim.process(parent())) == "caught boom"


def test_process_failure_fails_the_process_event():
    sim = Simulator()

    def bad():
        yield sim.timeout(0.5)
        raise RuntimeError("died")

    p = sim.process(bad())
    sim.run()
    assert p.triggered and not p.ok


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def wrong():
        yield 42

    p = sim.process(wrong())
    sim.run()
    assert p.triggered and not p.ok


def test_all_of_collects_values_in_order():
    sim = Simulator()
    evs = [sim.timeout(3.0, "a"), sim.timeout(1.0, "b"), sim.timeout(2.0, "c")]
    combined = sim.all_of(evs)
    assert sim.run_until_complete(combined) == ["a", "b", "c"]
    assert sim.now == 3.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    assert sim.run_until_complete(sim.all_of([])) == []


def test_any_of_returns_first():
    sim = Simulator()
    combined = sim.any_of([sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")])
    assert sim.run_until_complete(combined) == "fast"
    assert sim.now == 1.0


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    never = sim.event("never")
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(never)


def test_interrupt_fails_pending_process():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    p = sim.process(sleeper())
    p.interrupt("cancelled")
    sim.run()
    assert p.triggered and not p.ok
