"""Elastic membership + rebalancing (S55): shard map, rebalancer
primitives, autoscaling policy, join/decommission lifecycle."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.cluster.elastic import (
    HASH_SPACE,
    AutoscalePolicy,
    ElasticConfig,
    Rebalancer,
    ShardMap,
    path_hash,
)
from repro.errors import FeisuError, StorageError
from repro.sim.events import Simulator
from repro.sim.netmodel import NetworkTopology, NodeAddress, TopologySpec
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS


# -- ShardMap -------------------------------------------------------------


def test_shard_map_partitions_hash_space():
    smap = ShardMap(initial_shards=4)
    shards = smap.shards()
    assert shards[0].lo == 0 and shards[-1].hi == HASH_SPACE
    for left, right in zip(shards, shards[1:]):
        assert left.hi == right.lo  # contiguous, no gap or overlap
    for path in ("/t/b0", "/t/b1", "/other"):
        shard = smap.shard_for(path)
        assert shard.covers(path_hash(path))


def test_shard_split_is_minimal_version_churn():
    smap = ShardMap(initial_shards=1)
    (only,) = smap.shards()
    paths = [f"/t/b{i}" for i in range(8)]
    before = only.version
    right = smap.split(only, paths)
    assert right is not None
    # The left half keeps its id and version; only the new right shard
    # carries a fresh minor — one new version per split.
    assert only.version == before
    assert right.major == only.major and right.minor == only.minor + 1
    assert only.hi == right.lo
    assert smap.splits == 1 and smap.version_bumps == 1
    # Every path still routes to exactly one of the two halves.
    members = smap.members(paths)
    assert sorted(sum(members.values(), [])) == sorted(paths)
    assert all(members[s.shard_id] for s in smap.shards())


def test_shard_split_refuses_inseparable_members():
    smap = ShardMap(initial_shards=1)
    (only,) = smap.shards()
    assert smap.split(only, ["/solo"]) is None
    assert smap.split(only, []) is None
    assert smap.splits == 0


def test_shard_merge_requires_adjacency():
    smap = ShardMap(initial_shards=3)
    s0, s1, s2 = smap.shards()
    with pytest.raises(FeisuError):
        smap.merge(s0, s2)
    survivor = smap.merge(s0, s1)
    assert survivor is s0
    assert s0.hi == s2.lo
    assert len(smap.shards()) == 2
    assert smap.merges == 1


def test_bump_major_resets_minor():
    smap = ShardMap(initial_shards=1)
    (shard,) = smap.shards()
    shard.minor = 3
    smap.bump_major(shard)
    assert shard.version == "2.0"


# -- Rebalancer primitives ------------------------------------------------


def _env(**cfg_kwargs):
    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    nodes = spec.addresses()
    router = StorageRouter()
    fs = DistributedFS(nodes, seed=3)
    router.register(fs, default=True)
    reb = Rebalancer(sim, net, router, [fs], config=ElasticConfig(**cfg_kwargs))
    return sim, net, router, fs, reb


def _drive(sim, gen):
    return sim.run_until_complete(sim.process(gen))


def test_copy_replica_publishes_after_write_and_carries_variant():
    sim, net, router, fs, reb = _env()
    fs.write("/f", b"x" * 800)
    holders = fs.locations("/f")
    source = holders[0]
    variant = b"v" * 300
    fs.set_replica_variant("/f", source, variant, meta={"num_rows": 5})
    target = next(n for n in fs.nodes() if n not in holders)
    done = _drive(sim, reb.copy_replica(fs, "/f", source, target))
    assert done
    assert target in fs.locations("/f")
    assert fs.replica_variant("/f", target) == variant
    assert fs.replica_meta("/f", target) == {"num_rows": 5}
    assert reb.stats.moved_bytes == len(variant)
    # Idempotent: a retry against an already-holding target is a no-op.
    assert not _drive(sim, reb.copy_replica(fs, "/f", source, target))


def test_migrate_block_moves_exactly_one_replica():
    sim, net, router, fs, reb = _env()
    fs.write("/f", b"x" * 800)
    holders = fs.locations("/f")
    source = holders[0]
    target = next(n for n in fs.nodes() if n not in holders)
    assert _drive(sim, reb.migrate_block(fs, "/f", source, target))
    after = fs.locations("/f")
    assert source not in after and target in after
    assert len(after) == len(holders)  # count never changed
    assert reb.stats.migrations == 1


def test_migrate_block_adopts_half_finished_attempt():
    """A migration killed between publish and source-retirement leaves
    the block over-replicated; the retry must finish by retiring the
    source alone instead of shipping the bytes again."""
    sim, net, router, fs, reb = _env()
    fs.write("/f", b"x" * 800)
    holders = fs.locations("/f")
    source = holders[0]
    target = next(n for n in fs.nodes() if n not in holders)
    fs.add_replica("/f", target)  # the published half of a dead attempt
    moved_before = reb.stats.moved_bytes
    assert _drive(sim, reb.migrate_block(fs, "/f", source, target))
    assert reb.stats.adopted_migrations == 1
    assert reb.stats.moved_bytes == moved_before  # no second copy
    after = fs.locations("/f")
    assert source not in after and len(after) == len(holders)


def test_migrate_block_never_dips_below_floor():
    sim, net, router, fs, reb = _env()
    fs.write("/f", b"x" * 800)
    holders = fs.locations("/f")
    # At exactly the floor with the target already holding: adoption must
    # refuse to retire the source (that would drop below replication).
    source, target = holders[0], holders[1]
    assert not _drive(sim, reb.migrate_block(fs, "/f", source, target))
    assert set(fs.locations("/f")) == set(holders)


def test_evacuate_replica_rehomes_variant_to_survivor():
    sim, net, router, fs, reb = _env()
    fs.write("/f", b"x" * 800)
    holders = fs.locations("/f")
    leaving = holders[0]
    variant = b"v" * 200
    fs.set_replica_variant("/f", leaving, variant, meta={"num_rows": 2})
    # Over-replicated: survivors alone satisfy the floor.
    extra = next(n for n in fs.nodes() if n not in holders)
    fs.add_replica("/f", extra)
    assert _drive(sim, reb.evacuate_replica(fs, "/f", leaving))
    after = fs.locations("/f")
    assert leaving not in after and len(after) >= fs.replication
    # The variant the leaving node alone served survives on a survivor.
    assert any(fs.replica_variant("/f", n) == variant for n in after)
    assert reb.stats.evacuations == 1


def test_evacuate_replica_migrates_when_at_floor():
    sim, net, router, fs, reb = _env()
    fs.write("/f", b"x" * 800)
    holders = fs.locations("/f")
    leaving = holders[0]
    assert _drive(sim, reb.evacuate_replica(fs, "/f", leaving))
    after = fs.locations("/f")
    assert leaving not in after
    assert len(after) == fs.replication  # floor held throughout


def test_run_once_splits_hot_domain_and_spreads_hot_blocks():
    sim, net, router, fs, reb = _env(
        hot_share=0.40, spread_heat_threshold=1.5, max_spreads_per_cycle=4
    )
    for i in range(12):
        fs.write(f"/t/b{i}", b"x" * 400)
    smap = reb.maps[fs.name]
    members = smap.members(fs.list_paths())
    sid, paths = max(members.items(), key=lambda kv: len(kv[1]))
    assert len(paths) >= 2
    for path in paths:
        full = router.full_path(fs, path)
        for _ in range(5):
            reb.heat.record(full, 400, now=0.0)
    replicas_before = len(fs.locations(paths[0]))
    _drive(sim, reb.run_once())
    assert reb.stats.splits >= 1
    assert reb.stats.spreads >= 1
    assert len(fs.locations(paths[0])) > replicas_before
    assert reb.stats.cycles == 1


def test_run_once_merges_cold_shards():
    # hot_share > 1 makes splitting unreachable: only merging can fire.
    sim, net, router, fs, reb = _env(initial_shards=8, merge_share=0.02, hot_share=2.0)
    for i in range(12):
        fs.write(f"/t/b{i}", b"x" * 400)
    # One hot path; everything else stone cold → some adjacent pair of
    # shards holds ~0% of the heat and merges.
    reb.heat.record(router.full_path(fs, "/t/b0"), 400, now=0.0)
    shards_before = len(reb.maps[fs.name].shards())
    _drive(sim, reb.run_once())
    assert reb.stats.merges >= 1
    assert len(reb.maps[fs.name].shards()) < shards_before


def test_placement_ok_filters_spread_and_migration_targets():
    banned = set()
    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    router = StorageRouter()
    fs = DistributedFS(spec.addresses(), seed=3)
    router.register(fs, default=True)
    reb = Rebalancer(
        sim, net, router, [fs], config=ElasticConfig(),
        placement_ok=lambda n: n not in banned,
    )
    fs.write("/f", b"x" * 500)
    holders = fs.locations("/f")
    banned.update(n for n in fs.nodes() if n not in holders)
    assert reb._pick_target(fs, holders) is None  # noqa: SLF001
    banned.clear()
    assert reb._pick_target(fs, holders) is not None  # noqa: SLF001


# -- AutoscalePolicy ------------------------------------------------------


def _samples(*utils):
    return [SimpleNamespace(disk=SimpleNamespace(mean_utilization=u)) for u in utils]


def test_autoscale_proposes_up_after_sustained_load():
    policy = AutoscalePolicy(sustain_samples=3, cooldown_s=60.0)
    assert policy.evaluate(_samples(0.9, 0.9), 10.0, 5, lambda: None) is None
    # A dip inside the window breaks the streak.
    assert policy.evaluate(_samples(0.9, 0.1, 0.9), 20.0, 5, lambda: None) is None
    decision = policy.evaluate(_samples(0.7, 0.8, 0.9), 30.0, 5, lambda: None)
    assert decision is not None and decision.action == "scale-up"
    assert decision.at_s == 30.0
    # Cooldown: an equally loaded window right after proposes nothing.
    assert policy.evaluate(_samples(0.9, 0.9, 0.9), 40.0, 5, lambda: None) is None
    later = policy.evaluate(_samples(0.9, 0.9, 0.9), 100.0, 5, lambda: None)
    assert later is not None


def test_autoscale_proposes_down_with_victim_and_respects_min_nodes():
    policy = AutoscalePolicy(sustain_samples=2, cooldown_s=0.0, min_nodes=3)
    idle = _samples(0.0, 0.01)
    assert policy.evaluate(idle, 10.0, 3, lambda: "w0") is None  # at min
    decision = policy.evaluate(idle, 20.0, 4, lambda: "w0")
    assert decision is not None and decision.action == "scale-down"
    assert decision.worker_id == "w0"
    # No nameable victim → no proposal.
    assert policy.evaluate(idle, 30.0, 4, lambda: None) is None


# -- topology admission ---------------------------------------------------


def test_admit_node_extends_an_existing_rack():
    sim = Simulator()
    spec = TopologySpec(1, 2, 3)
    net = NetworkTopology(sim, spec)
    newcomer = NodeAddress(0, 1, 3)  # beyond nodes_per_rack
    with pytest.raises(FeisuError):
        net.distance(spec.addresses()[0], newcomer)
    net.admit_node(newcomer)
    assert net.distance(spec.addresses()[0], newcomer) > 0
    net.admit_node(newcomer)  # idempotent
    with pytest.raises(FeisuError):
        net.admit_node(NodeAddress(0, 9, 0))  # no such rack
    with pytest.raises(FeisuError):
        net.admit_node(NodeAddress(3, 0, 0))  # no such datacenter
    with pytest.raises(FeisuError):
        net.admit_node(NodeAddress(0, 0, -1))


# -- storage node pool ----------------------------------------------------


def test_storage_node_pool_add_remove():
    nodes = TopologySpec(1, 1, 3).addresses()
    fs = DistributedFS(nodes, seed=3)
    fs.write("/f", b"x" * 300)
    newcomer = NodeAddress(0, 0, 3)
    assert fs.add_node(newcomer)
    assert not fs.add_node(newcomer)  # already pooled
    assert newcomer in fs.nodes()
    holder = fs.locations("/f")[0]
    assert fs.held_paths(holder) == ["/f"]
    assert fs.bytes_on(holder) == 300
    assert fs.bytes_on(newcomer) == 0
    with pytest.raises(StorageError):
        fs.remove_node(holder)  # still holds a replica
    fs.drop_replica("/f", holder)
    fs.remove_node(holder)
    assert holder not in fs.nodes()
    with pytest.raises(StorageError):
        fs.remove_node(holder)  # not pooled any more


# -- cluster lifecycle ----------------------------------------------------

SCHEMA = Schema.of(c1=DataType.INT64, clicks=DataType.FLOAT64)


def _elastic_cluster(nodes_per_rack=3, n=1500, **elastic_kwargs):
    config = FeisuConfig(
        datacenters=1,
        racks_per_datacenter=2,
        nodes_per_rack=nodes_per_rack,
        enable_elastic=True,
        elastic=ElasticConfig(**elastic_kwargs) if elastic_kwargs else None,
    )
    cluster = FeisuCluster(config)
    rng = np.random.default_rng(5)
    cluster.load_table(
        "T",
        SCHEMA,
        {"c1": rng.integers(0, 100, n), "clicks": rng.random(n)},
        block_rows=250,
    )
    return cluster


def test_join_node_becomes_schedulable_and_pooled():
    cluster = _elastic_cluster()
    count_before = len(cluster.leaves)
    leaf = cluster.join_node()
    assert len(cluster.leaves) == count_before + 1
    assert leaf.address.node >= cluster.config.nodes_per_rack
    assert cluster.cluster_manager.is_alive(leaf.worker_id)
    assert cluster.scheduler.leaf_at(leaf.address) is leaf
    for system in cluster.router.systems():
        assert leaf.address in system.nodes()
    # The newcomer keeps heartbeating on the simulated clock.
    cluster.sim.run(until=cluster.sim.now + 30.0)
    cluster.cluster_manager.sweep()
    assert cluster.cluster_manager.is_alive(leaf.worker_id)
    assert cluster.query("SELECT COUNT(*) AS n FROM T").rows()[0][0] == 1500


def test_join_requires_elastic_flag():
    cluster = FeisuCluster(FeisuConfig(nodes_per_rack=2))
    with pytest.raises(FeisuError):
        cluster.join_node()
    with pytest.raises(FeisuError):
        cluster.decommission("leaf-dc0/rack0/node0")


def test_decommission_evacuates_everything_and_unregisters():
    cluster = _elastic_cluster()
    victim = next(
        leaf
        for leaf in cluster.leaves
        if cluster.storage_a.held_paths(leaf.address)
    )
    addr = victim.address
    done = cluster.decommission(victim.worker_id)
    cluster.sim.run_until_complete(done, limit=cluster.sim.now + 600.0)
    assert victim.retired and not victim.alive
    assert cluster.elastic.departed == [addr]
    for system in cluster.router.systems():
        assert addr not in system.nodes()
        assert all(addr not in system.locations(p) for p in system.list_paths())
    # Every block held its replication floor through the drain.
    for path in cluster.storage_a.list_paths():
        assert len(cluster.storage_a.locations(path)) >= cluster.storage_a.replication
    with pytest.raises(FeisuError):
        cluster.cluster_manager.is_alive(victim.worker_id)
    # The retired heartbeat loop exits instead of raising on the
    # unregistered id; answers are still complete and correct.
    cluster.sim.run(until=cluster.sim.now + 60.0)
    assert cluster.query("SELECT COUNT(*) AS n FROM T").rows()[0][0] == 1500


def test_scheduler_skips_draining_workers():
    cluster = _elastic_cluster()
    cluster.query("SELECT SUM(c1) AS s FROM T")
    victim = max(cluster.leaves, key=lambda l: l.tasks_completed)
    cluster.cluster_manager.start_drain(victim.worker_id)
    before = victim.tasks_completed
    cluster.query("SELECT SUM(c1) AS s FROM T")
    assert victim.tasks_completed == before  # no new placements
    cluster.cluster_manager.cancel_drain(victim.worker_id)
    cluster.query("SELECT SUM(c1) AS s FROM T")
    assert victim.tasks_completed > before  # back in rotation


def test_elastic_repairer_avoids_draining_targets():
    cluster = _elastic_cluster()
    cluster.cluster_manager.sweep()
    fs = cluster.storage_a
    path = fs.list_paths()[0]
    holders = fs.locations(path)
    outsider = next(
        leaf for leaf in cluster.leaves if leaf.address not in holders
    )
    # Drain every non-holder but one: repair has exactly one legal target.
    allowed = outsider.address
    for leaf in cluster.leaves:
        if leaf.address not in holders and leaf.address != allowed:
            cluster.cluster_manager.start_drain(leaf.worker_id)
    for node in holders[1:]:
        fs.drop_replica(path, node)
    repairer = next(r for r in cluster.elastic.repairers if r.system is fs)
    cluster.sim.run_until_complete(cluster.sim.process(repairer.repair_once()))
    restored = fs.locations(path)
    assert allowed in restored
    draining = {
        leaf.address
        for leaf in cluster.leaves
        if cluster.cluster_manager.is_draining(leaf.worker_id)
    }
    assert not draining.intersection(restored)


def test_autoscale_proposals_from_sustained_metrics():
    cluster = _elastic_cluster(
        rebalance_period_s=20.0,
        sustain_samples=2,
        scale_down_utilization=0.05,
        autoscale_cooldown_s=1e9,  # at most one proposal in this run
    )
    cluster.start_metrics_sampler(period_s=10.0)
    # An idle cluster's disk utilization sits at ~0: sustained
    # under-utilization proposes exactly one scale-down with a victim.
    cluster.sim.run(until=200.0)
    proposals = cluster.elastic.proposals
    assert len(proposals) == 1
    decision = proposals[0]
    assert decision.action == "scale-down"
    assert any(l.worker_id == decision.worker_id for l in cluster.leaves)
    # Applying the proposal actually drains and removes the victim.
    done = cluster.elastic.apply_proposal(decision)
    cluster.sim.run_until_complete(done, limit=cluster.sim.now + 600.0)
    assert cluster.elastic.decommissions == 1
    assert cluster.query("SELECT COUNT(*) AS n FROM T").rows()[0][0] == 1500
