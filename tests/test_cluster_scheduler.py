"""Scheduler placement policy and backup deadlines."""

import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.cluster.scheduler import BACKUP_FACTOR, BACKUP_MIN_S
from repro.errors import SchedulingError
from repro.planner.physical import build_plan
from repro.sql.analyzer import analyze
from repro.sql.parser import parse

import numpy as np


@pytest.fixture()
def env():
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    n = 2000
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64),
        {"a": np.arange(n)},
        storage="storage-a",
        block_rows=500,
    )
    plan = build_plan(analyze(parse("SELECT COUNT(*) FROM T WHERE a >= 0"), cluster.catalog))
    return cluster, plan


def test_place_prefers_replica_holder(env):
    cluster, plan = env
    task = plan.tasks[0]
    placement = cluster.scheduler.place(task, plan.scan_cnf)
    system, inner = cluster.router.resolve(task.block.path)
    assert placement.data_local
    assert placement.leaf.address in system.locations(inner)


def test_place_excludes_named_workers(env):
    cluster, plan = env
    task = plan.tasks[0]
    system, inner = cluster.router.resolve(task.block.path)
    replicas = set(system.locations(inner))
    replica_leaf_ids = [
        leaf.worker_id for leaf in cluster.leaves if leaf.address in replicas
    ]
    placement = cluster.scheduler.place(task, plan.scan_cnf, exclude=replica_leaf_ids)
    assert placement.leaf.worker_id not in replica_leaf_ids
    assert not placement.data_local


def test_place_skips_dead_leaves(env):
    cluster, plan = env
    task = plan.tasks[0]
    system, inner = cluster.router.resolve(task.block.path)
    replicas = set(system.locations(inner))
    for leaf in cluster.leaves:
        if leaf.address in replicas:
            leaf.crash()
    placement = cluster.scheduler.place(task, plan.scan_cnf)
    assert placement.leaf.alive


def test_no_live_leaf_raises(env):
    cluster, plan = env
    for leaf in cluster.leaves:
        leaf.crash()
    with pytest.raises(SchedulingError):
        cluster.scheduler.place(plan.tasks[0], plan.scan_cnf)


def test_round_robin_when_locality_disabled():
    cluster = FeisuCluster(
        FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4, locality_aware=False)
    )
    cluster.load_table(
        "T", Schema.of(a=DataType.INT64), {"a": np.arange(4000)}, block_rows=500
    )
    plan = build_plan(analyze(parse("SELECT COUNT(*) FROM T"), cluster.catalog))
    chosen = [cluster.scheduler.place(t, plan.scan_cnf).leaf.worker_id for t in plan.tasks]
    assert len(set(chosen)) == len(cluster.leaves)  # spread round-robin


def test_estimate_positive_and_larger_for_remote(env):
    cluster, plan = env
    task = plan.tasks[0]
    local = cluster.scheduler.place(task, plan.scan_cnf)
    system, inner = cluster.router.resolve(task.block.path)
    replica_leaf_ids = [
        leaf.worker_id for leaf in cluster.leaves if leaf.address in set(system.locations(inner))
    ]
    remote = cluster.scheduler.place(task, plan.scan_cnf, exclude=replica_leaf_ids)
    assert 0 < local.estimate_s < remote.estimate_s


def test_backup_deadline_floor(env):
    cluster, _ = env
    assert cluster.scheduler.backup_deadline(0.0001) == BACKUP_MIN_S
    assert cluster.scheduler.backup_deadline(10.0) == BACKUP_FACTOR * 10.0


def test_cross_datacenter_data_is_slower():
    """Geo-distribution: scanning data homed in a remote datacenter pays
    WAN transfer when no local replica exists (§I's cross-domain case)."""
    cfg = FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4)
    near = FeisuCluster(cfg)
    far = FeisuCluster(cfg)
    n = 4000
    cols = {"a": np.arange(n)}
    schema = Schema.of(a=DataType.INT64)
    # "near": default placement spreads replicas; every block has a
    # replica reachable without the WAN from some leaf.
    near.load_table("T", schema, cols, storage="storage-a", block_rows=500, scale_factor=2000.0)
    # "far": pin every block onto datacenter-1 nodes, then crash every
    # dc-1 leaf so queries must pull the data across the WAN.
    far.load_table("T", schema, cols, storage="storage-a", block_rows=500, scale_factor=2000.0)
    for leaf in far.leaves:
        if leaf.address.datacenter == 1:
            leaf.crash()
    # invalidate dc-0 replicas of far's blocks so only dc-1 copies remain
    # (blocks with no dc-1 replica keep one dc-0 copy to stay readable)
    table = far.catalog.get("T")
    for ref in table.blocks:
        system, inner = far.router.resolve(ref.path)
        if not any(a.datacenter == 1 for a in system.locations(inner)):
            continue
        for addr in list(system.locations(inner)):
            if addr.datacenter == 0:
                system.drop_replica(inner, addr)
    sql = "SELECT SUM(a) FROM T WHERE a >= 0"  # actually reads the column
    r_near = near.query(sql)
    r_far = far.query(sql)
    assert r_far.rows() == r_near.rows()
    t_near = r_near.stats["response_time_s"]
    t_far = r_far.stats["response_time_s"]
    assert t_far > t_near
    # and the far cluster's WAN links actually carried the data
    wan_far = sum(ln.bytes_carried for ln in far.net.links() if ln.name.startswith("wan"))
    assert wan_far > 0
