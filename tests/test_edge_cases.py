"""Edge-case coverage through the full stack."""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def cluster():
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    rng = np.random.default_rng(8)
    n = 2000
    provinces = np.empty(n, dtype=object)
    for i in range(n):
        provinces[i] = ["beijing", "shanghai", "xian"][i % 3]
    cluster.load_table(
        "T",
        Schema.of(
            a=DataType.INT64,
            b=DataType.FLOAT64,
            p=DataType.STRING,
            ok=DataType.BOOL,
        ),
        {
            "a": rng.integers(-5, 6, n),
            "b": rng.normal(0, 1, n),
            "p": provinces,
            "ok": rng.integers(0, 2, n).astype(bool),
        },
        storage="storage-a",
        block_rows=512,
    )
    empty_schema = Schema.of(x=DataType.INT64, y=DataType.STRING)
    cluster.load_table(
        "EMPTY",
        empty_schema,
        {"x": np.empty(0, dtype=np.int64), "y": np.empty(0, dtype=object)},
        storage="storage-a",
    )
    cluster._cols = {
        "a": None,  # populated lazily below if needed
    }
    return cluster


def test_empty_table_count(cluster):
    assert cluster.query("SELECT COUNT(*) FROM EMPTY").rows() == [(0,)]


def test_empty_table_projection(cluster):
    r = cluster.query("SELECT x, y FROM EMPTY")
    assert r.num_rows == 0 and r.columns == ["x", "y"]


def test_empty_table_group_by(cluster):
    r = cluster.query("SELECT y, COUNT(*) FROM EMPTY GROUP BY y")
    assert r.num_rows == 0


def test_empty_table_min_max_defaults(cluster):
    r = cluster.query("SELECT MIN(x) lo, MAX(x) hi, SUM(x) s FROM EMPTY")
    assert r.num_rows == 1  # global aggregate always yields one row
    assert r.rows()[0] == (0, 0, 0)  # engine NULL-defaults for INT64


def test_limit_zero(cluster):
    assert cluster.query("SELECT a FROM T LIMIT 0").num_rows == 0


def test_order_by_string_column(cluster):
    r = cluster.query("SELECT p, COUNT(*) c FROM T GROUP BY p ORDER BY p")
    labels = [row[0] for row in r.rows()]
    assert labels == sorted(labels)


def test_multi_key_group_by_mixed_types(cluster):
    r = cluster.query(
        "SELECT p, ok, COUNT(*) c FROM T GROUP BY p, ok ORDER BY p, c"
    )
    assert r.num_rows == 6  # 3 provinces x 2 bool values
    total = cluster.query("SELECT COUNT(*) FROM T").rows()[0][0]
    assert sum(row[2] for row in r.rows()) == total


def test_boolean_column_predicate(cluster):
    yes = cluster.query("SELECT COUNT(*) FROM T WHERE ok = TRUE").rows()[0][0]
    no = cluster.query("SELECT COUNT(*) FROM T WHERE ok = FALSE").rows()[0][0]
    assert yes + no == 2000


def test_within_end_to_end(cluster):
    # WITHIN folds into grouping: equivalent to GROUP BY p.
    within = cluster.query("SELECT SUM(b) WITHIN p FROM T")
    grouped = cluster.query("SELECT SUM(b) s FROM T GROUP BY p")
    assert sorted(round(r[0], 9) for r in within.rows()) == sorted(
        round(r[0], 9) for r in grouped.rows()
    )


def test_left_outer_join_through_cluster(cluster):
    dims = {
        "p": np.array(["beijing", "shanghai"], dtype=object),  # xian missing
        "region": np.array(["north", "east"], dtype=object),
    }
    cluster.load_table(
        "DIM", Schema.of(p=DataType.STRING, region=DataType.STRING), dims, storage="storage-b"
    )
    r = cluster.query(
        "SELECT region, COUNT(*) c FROM T LEFT OUTER JOIN DIM ON T.p = DIM.p "
        "GROUP BY region ORDER BY region"
    )
    rows = dict(r.rows())
    assert rows[""] > 0  # unmatched xian rows pad with the string default
    assert rows["north"] > 0 and rows["east"] > 0
    assert sum(rows.values()) == 2000


def test_negative_literal_filters(cluster):
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a >= -2 AND a <= 2")
    assert 0 < r.rows()[0][0] < 2000


def test_having_on_alias_expression(cluster):
    r = cluster.query(
        "SELECT p, COUNT(*) AS c FROM T GROUP BY p HAVING COUNT(*) > 600 ORDER BY c DESC"
    )
    assert all(row[1] > 600 for row in r.rows())


def test_arithmetic_projection_distribution(cluster):
    r = cluster.query("SELECT a, a * a AS sq FROM T WHERE a = -3 LIMIT 3")
    assert all(row[1] == 9 for row in r.rows())


def test_division_by_zero_yields_non_crash(cluster):
    # a spans [-5, 5] so a/a hits 0/0; engine must not crash.
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a / 2 > 1")
    expected = cluster.query("SELECT COUNT(*) FROM T WHERE a > 2")
    assert r.rows() == expected.rows()


def test_contains_empty_string_matches_all(cluster):
    r = cluster.query("SELECT COUNT(*) FROM T WHERE p CONTAINS ''")
    assert r.rows()[0][0] == 2000


def test_mixed_and_or_not_nesting(cluster):
    r = cluster.query(
        "SELECT COUNT(*) FROM T WHERE NOT (a > 0 AND (p = 'xian' OR ok = TRUE)) AND b < 10"
    )
    assert 0 <= r.rows()[0][0] <= 2000


def test_group_by_expression(cluster):
    r = cluster.query("SELECT a % 2 AS parity, COUNT(*) c FROM T GROUP BY parity ORDER BY parity")
    # a ranges over [-5,5]: parity takes values -1, 0, 1 under C-style %
    assert 2 <= r.num_rows <= 3
    total = sum(row[1] for row in r.rows())
    assert total == 2000


def test_query_unknown_table_fails_cleanly(cluster):
    from repro.errors import StorageError

    with pytest.raises((AnalysisError, StorageError)):
        cluster.query("SELECT COUNT(*) FROM Nope")


def test_order_by_unselected_aggregate(cluster):
    r = cluster.query("SELECT p FROM T GROUP BY p ORDER BY COUNT(*) DESC, p LIMIT 2")
    counts = cluster.query("SELECT p, COUNT(*) c FROM T GROUP BY p ORDER BY c DESC, p")
    assert [row[0] for row in r.rows()] == [row[0] for row in counts.rows()[:2]]


def test_order_by_unselected_sum(cluster):
    r = cluster.query("SELECT p FROM T GROUP BY p ORDER BY SUM(b) DESC LIMIT 1")
    best = cluster.query("SELECT p, SUM(b) s FROM T GROUP BY p ORDER BY s DESC LIMIT 1")
    assert r.rows()[0][0] == best.rows()[0][0]


def test_duplicate_aggregate_in_select_and_order(cluster):
    r = cluster.query(
        "SELECT p, COUNT(*) AS n FROM T GROUP BY p ORDER BY COUNT(*) DESC, p LIMIT 2"
    )
    assert r.rows()[0][1] >= r.rows()[1][1]


def test_finalize_error_does_not_strand_client(cluster, monkeypatch):
    """Regression: a failure inside result finalization must resolve the
    job with the error, not leave the client stepping heartbeats forever."""
    import repro.cluster.master as master_mod

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic finalize failure")

    monkeypatch.setattr(master_mod, "finalize", boom)
    job = cluster.query_job("SELECT COUNT(*) FROM T")
    assert job.error is not None
    assert "synthetic finalize failure" in str(job.error)
