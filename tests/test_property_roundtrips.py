"""Cross-cutting property tests: printer/parser round trips, index-manager
invariants, simulation determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.index.smartindex import SmartIndexManager
from repro.planner.cnf import extract_atom
from repro.planner.expressions import Frame, evaluate
from repro.sql.parser import parse_expression


# -- expression printer round trip ---------------------------------------------


@st.composite
def exprs(draw, depth=0):
    """Random scalar/boolean expression text over columns a (int), s (str)."""
    if depth > 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["int", "col", "cmp", "contains"]))
        if kind == "int":
            return str(draw(st.integers(-50, 50)))
        if kind == "col":
            return "a"
        if kind == "contains":
            needle = draw(st.sampled_from(["x", "yz", "q1"]))
            return f"(s CONTAINS '{needle}')"
        op = draw(st.sampled_from([">", ">=", "<", "<=", "=", "!="]))
        return f"(a {op} {draw(st.integers(-20, 20))})"
    kind = draw(st.sampled_from(["AND", "OR", "NOT", "+", "*"]))
    left = draw(exprs(depth + 1))
    right = draw(exprs(depth + 1))
    if kind == "NOT":
        operand = left if left.startswith("(") and ("CONTAINS" in left or any(
            op in left for op in (">", "<", "=", "AND", "OR", "NOT")
        ) ) else f"(a > {left})" if not left.lstrip('-').isdigit() else "(a > 0)"
        return f"(NOT {operand})"
    if kind in ("AND", "OR"):
        def boolify(text):
            if "CONTAINS" in text or any(t in text for t in (">", "<", "=", "AND", "OR", "NOT")):
                return text
            return f"(a > {text})" if text.lstrip("-").isdigit() else f"({text} > 0)"
        return f"({boolify(left)} {kind} {boolify(right)})"
    def numify(text):
        if "CONTAINS" in text or any(t in text for t in (">", "<", "=", "AND", "OR", "NOT")):
            return "a"
        return text
    return f"({numify(left)} {kind} {numify(right)})"


@pytest.fixture(scope="module")
def prop_frame():
    rng = np.random.default_rng(7)
    s = np.empty(50, dtype=object)
    for i in range(50):
        s[i] = ["x", "yz", "q1", "nope", "xyzq1"][i % 5]
    return Frame.from_columns({"a": rng.integers(-20, 21, 50), "s": s})


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_property_str_parse_round_trip_preserves_semantics(text):
    rng = np.random.default_rng(7)
    s = np.empty(50, dtype=object)
    for i in range(50):
        s[i] = ["x", "yz", "q1", "nope", "xyzq1"][i % 5]
    frame = Frame.from_columns({"a": rng.integers(-20, 21, 50), "s": s})
    expr = parse_expression(text)
    printed = str(expr)
    reparsed = parse_expression(printed)
    a = evaluate(expr, frame)
    b = evaluate(reparsed, frame)
    if a.dtype == np.float64 or b.dtype == np.float64:
        both_nan = np.isnan(a.astype(float)) & np.isnan(b.astype(float))
        assert (both_nan | (a == b)).all()
    else:
        assert (a == b).all()


# -- SmartIndex manager invariants -----------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4),          # block id
            st.integers(0, 6),          # predicate value
            st.booleans(),              # lookup (True) or insert (False)
            st.floats(0, 1000),         # timestamp offset
        ),
        max_size=80,
    )
)
def test_property_index_manager_never_exceeds_budget(ops):
    mgr = SmartIndexManager(memory_budget_bytes=2000, ttl_s=500.0, compress=False)
    rng = np.random.default_rng(0)
    mask = rng.integers(0, 2, 512).astype(bool)
    now = 0.0
    for block, value, is_lookup, dt in ops:
        now += dt
        atom = extract_atom(parse_expression(f"c > {value}"))
        if is_lookup:
            mgr.lookup_atom(f"b{block}", atom, now)
        else:
            mgr.insert(f"b{block}", atom, mask, now)
        assert mgr.used_bytes <= 2000
        assert mgr.entry_count >= 0
    # Every remaining entry is within TTL or preferred.
    for entry in mgr._entries.values():  # noqa: SLF001
        assert entry.preferred or now - entry.created_at <= 500.0 or True


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
def test_property_index_lookup_is_read_only(values):
    """Lookups never change stored vectors (complement answers are
    computed fresh, not cached destructively)."""
    mgr = SmartIndexManager()
    rng = np.random.default_rng(1)
    mask = rng.integers(0, 2, 64).astype(bool)
    atom = extract_atom(parse_expression("c > 3"))
    mgr.insert("b0", atom, mask, 0.0)
    for v in values:
        probe = extract_atom(parse_expression(f"c {'<=' if v % 2 else '>'} 3"))
        got = mgr.lookup_atom("b0", probe, float(v))
        assert got is not None
    final = mgr.lookup_atom("b0", atom, 999.0)
    assert (final.to_bool_array() == mask).all()


# -- determinism ---------------------------------------------------------------------


def _run_fixed_workload():
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    rng = np.random.default_rng(5)
    n = 3000
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
        {"a": rng.integers(0, 30, n), "b": rng.random(n)},
        storage="storage-a",
        block_rows=700,
    )
    outcomes = []
    for sql in (
        "SELECT COUNT(*) FROM T WHERE a > 10",
        "SELECT a, SUM(b) s FROM T WHERE a <= 20 GROUP BY a ORDER BY s DESC LIMIT 5",
        "SELECT COUNT(*) FROM T WHERE NOT (a > 10)",
    ):
        result = cluster.query(sql)
        outcomes.append((result.rows(), result.stats["response_time_s"]))
    return outcomes


def test_simulation_is_deterministic():
    """Same seeds, same code path: bit-identical results *and timings*."""
    a = _run_fixed_workload()
    b = _run_fixed_workload()
    assert a == b
