"""Property tests: BitVector algebra and popcount vs. pure-Python references.

The SmartIndex answers predicates straight out of these bit vectors
(Fig 6/7): AND for conjuncts, OR for disjunctive clauses, NOT for
complement hits, ``count()`` for result cardinality.  Every operation is
checked here against the obvious pure-Python list/`bin()` implementation,
including the tail-padding edge cases (lengths not divisible by 8, dirty
padding bits in arbitrary packed buffers) and the RLE codec's corruption
error paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.index.bitmap import BitVector, rle_compress, rle_decompress

settings.register_profile("bitmap", deadline=None, max_examples=80)
settings.load_profile("bitmap")

bit_lists = st.lists(st.booleans(), min_size=0, max_size=300)


def _popcount_reference(packed: bytes, length: int) -> int:
    """Pure-Python popcount of a packed big-endian bit buffer: walk every
    in-range bit index, ignoring the padding bits past ``length``."""
    return sum(
        1
        for i in range(length)
        if packed[i // 8] & (0x80 >> (i % 8))
    )


# -- round trip & popcount ---------------------------------------------------


@given(bits=bit_lists)
def test_bool_array_roundtrip(bits):
    bv = BitVector.from_bool_array(np.asarray(bits, dtype=bool))
    assert bv.length == len(bits)
    assert bv.to_bool_array().tolist() == bits


@given(bits=bit_lists)
def test_count_matches_pure_python_popcount(bits):
    bv = BitVector.from_bool_array(np.asarray(bits, dtype=bool))
    assert bv.count() == sum(bits)
    assert bv.count() == _popcount_reference(bv._bits.tobytes(), bv.length)  # noqa: SLF001
    assert bv.any() == any(bits)


@given(data=st.data())
def test_count_masks_dirty_padding_bits(data):
    """count() must be exact for *arbitrary* packed buffers — including
    ones whose padding bits beyond ``length`` are set (e.g. a complement
    produced upstream or a buffer sliced out of a larger vector)."""
    length = data.draw(st.integers(0, 200))
    nbytes = (length + 7) // 8
    raw = bytes(data.draw(st.lists(st.integers(0, 255), min_size=nbytes, max_size=nbytes)))
    bv = BitVector(np.frombuffer(raw, dtype=np.uint8).copy(), length)
    assert bv.count() == _popcount_reference(raw, length)


# -- bitwise algebra ---------------------------------------------------------


@given(data=st.data())
def test_and_or_not_match_elementwise_reference(data):
    n = data.draw(st.integers(0, 200))
    a = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    b = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    va = BitVector.from_bool_array(np.asarray(a, dtype=bool))
    vb = BitVector.from_bool_array(np.asarray(b, dtype=bool))
    assert (va & vb).to_bool_array().tolist() == [x and y for x, y in zip(a, b)]
    assert (va | vb).to_bool_array().tolist() == [x or y for x, y in zip(a, b)]
    assert (~va).to_bool_array().tolist() == [not x for x in a]


@given(data=st.data())
def test_de_morgan_and_complement_cardinality(data):
    n = data.draw(st.integers(0, 200))
    a = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    b = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    va = BitVector.from_bool_array(np.asarray(a, dtype=bool))
    vb = BitVector.from_bool_array(np.asarray(b, dtype=bool))
    assert ~(va & vb) == (~va | ~vb)
    assert ~(va | vb) == (~va & ~vb)
    # the complement-hit identity the Fig 7 rewrite relies on
    assert (~va).count() == n - va.count()
    assert (~~va) == va


@given(length=st.integers(0, 100))
def test_zeros_ones_constructors(length):
    assert BitVector.zeros(length).count() == 0
    assert BitVector.ones(length).count() == length
    assert BitVector.ones(length) == ~BitVector.zeros(length)


def test_length_mismatch_is_rejected():
    with pytest.raises(IndexError_):
        BitVector.zeros(8) & BitVector.zeros(9)
    with pytest.raises(IndexError_):
        BitVector.zeros(8) | BitVector.zeros(9)


def test_non_uint8_buffer_is_rejected():
    with pytest.raises(IndexError_):
        BitVector(np.zeros(2, dtype=np.int64), 16)


# -- RLE codec ---------------------------------------------------------------


@given(bits=bit_lists)
def test_rle_roundtrip_preserves_bits_and_count(bits):
    bv = BitVector.from_bool_array(np.asarray(bits, dtype=bool))
    payload, length = rle_compress(bv)
    back = rle_decompress(payload, length)
    assert back == bv
    assert back.count() == sum(bits)


@given(repeats=st.integers(1, 3))
def test_rle_roundtrip_beyond_uint16_run_limit(repeats):
    """Runs longer than 0xFFFF packed bytes must chunk and reassemble."""
    n_bits = (0xFFFF + 17) * 8 * repeats
    bv = BitVector.from_bool_array(np.ones(n_bits, dtype=bool))
    payload, length = rle_compress(bv)
    back = rle_decompress(payload, length)
    assert back.count() == n_bits == back.length


def test_rle_compression_wins_on_selective_predicates():
    # the paper's motivation: long zero runs collapse
    mask = np.zeros(64_000, dtype=bool)
    mask[123] = True
    bv = BitVector.from_bool_array(mask)
    payload, _ = rle_compress(bv)
    assert len(payload) < bv.nbytes / 100


@given(bits=bit_lists, extra=st.integers(1, 2))
def test_rle_rejects_torn_payload(bits, extra):
    bv = BitVector.from_bool_array(np.asarray(bits, dtype=bool))
    payload, length = rle_compress(bv)
    with pytest.raises(IndexError_):
        rle_decompress(payload + b"\x01" * extra, length)


@given(bits=st.lists(st.booleans(), min_size=1, max_size=300))
def test_rle_rejects_length_mismatch(bits):
    bv = BitVector.from_bool_array(np.asarray(bits, dtype=bool))
    payload, length = rle_compress(bv)
    with pytest.raises(IndexError_):
        rle_decompress(payload, length + 8)
