"""Regressions for the client/serving-path bugfix sweep (S52 satellites).

Three real holes that become load-bearing under multi-session traffic:

* ``FeisuClient.query_job`` skipped both the syntax check and the ACL
  read pre-flight that ``query`` performs — a denied user could submit
  straight through the job path;
* ``QueryHistory.record`` rebuilt the whole entries list on every insert
  once past capacity (O(capacity) per query, quadratic per session) and
  had no locking for concurrent sessions;
* ``JobScheduler``'s round-robin cursor and placement counters were
  unguarded and ``leaf_at`` scanned every leaf per call.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.client import FeisuClient
from repro.client.history import QueryHistory
from repro.errors import AccessDeniedError, ParseError
from repro.sql.analyzer import analyze
from repro.sql.parser import parse

THREADS = 8


# -- FeisuClient.query_job guarded submission --------------------------------


def test_query_job_denied_user_raises_access_denied(fresh_cluster):
    fresh_cluster.create_user("intern")  # no grants at all
    client = FeisuClient(fresh_cluster, "intern")
    with pytest.raises(AccessDeniedError):
        client.query_job("SELECT COUNT(*) FROM T")
    # The denial happened client-side: nothing reached the master.
    assert fresh_cluster.master.entry_guard.admitted == 0


def test_query_job_bad_syntax_raises_guided_parse_error(fresh_cluster):
    fresh_cluster.create_user("dev", admin=True)
    client = FeisuClient(fresh_cluster, "dev")
    with pytest.raises(ParseError) as err:
        client.query_job("SELECT a")
    assert "FROM" in str(err.value)  # the guided hint, not a raw parse error


def test_query_and_query_job_share_one_guard(fresh_cluster):
    """Both entry points run the same pre-flight and both record history."""
    fresh_cluster.create_user("dev", admin=True)
    client = FeisuClient(fresh_cluster, "dev")
    client.query("SELECT COUNT(*) FROM T WHERE c2 > 3")
    job = client.query_job("SELECT COUNT(*) FROM T WHERE c2 > 3")
    assert job.result is not None
    assert len(client.history) == 2


# -- QueryHistory capacity + concurrency -------------------------------------


def _analyzed(cluster, sql):
    return analyze(parse(sql), cluster.catalog)


def test_history_keeps_only_newest_past_capacity(fresh_cluster):
    history = QueryHistory(capacity=50)
    analyzed = _analyzed(fresh_cluster, "SELECT COUNT(*) FROM T WHERE c2 > 3")
    for i in range(100):
        history.record(float(i), "u", f"q{i}", analyzed)
    assert len(history) == 50
    entries = history.entries()
    assert [e.sql for e in entries] == [f"q{i}" for i in range(50, 100)]
    # Still O(1) bookkeeping: the deque's maxlen is the capacity.
    assert history._entries.maxlen == 50


def test_history_books_balance_under_thread_hammer(fresh_cluster):
    history = QueryHistory(capacity=300)
    analyzed = _analyzed(fresh_cluster, "SELECT COUNT(*) FROM T WHERE c2 > 3")
    per_thread = 100
    barrier = threading.Barrier(THREADS)

    def worker(tid):
        barrier.wait()
        for i in range(per_thread):
            history.record(float(i), f"user{tid}", f"t{tid}q{i}", analyzed)
            history.entries(user=f"user{tid}")  # concurrent reads too

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for f in [pool.submit(worker, tid) for tid in range(THREADS)]:
            f.result()

    assert len(history) == 300  # capacity bound held exactly
    entries = history.entries()
    assert len(entries) == 300
    # Every retained entry is one of the recorded ones, none duplicated.
    assert len({(e.user, e.sql) for e in entries}) == 300
    counts = history.frequent_predicates(top=5)
    assert counts[0][0] == "c2 > 3"


# -- JobScheduler concurrent round-robin + leaf_at map ------------------------


def test_concurrent_round_robin_neither_skips_nor_double_counts(fresh_cluster):
    fresh_cluster.scheduler.locality_aware = False
    scheduler = fresh_cluster.scheduler
    plan = __import__("repro.planner.physical", fromlist=["build_plan"]).build_plan(
        _analyzed(fresh_cluster, "SELECT COUNT(*) FROM T")
    )
    task = plan.tasks[0]
    n_leaves = len(scheduler.leaves())
    per_thread = 10 * n_leaves
    placements = [[] for _ in range(THREADS)]
    barrier = threading.Barrier(THREADS)

    def worker(tid):
        barrier.wait()
        for _ in range(per_thread):
            placements[tid].append(scheduler.place(task, plan.scan_cnf))

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for f in [pool.submit(worker, tid) for tid in range(THREADS)]:
            f.result()

    total = THREADS * per_thread
    # The cursor advanced exactly once per placement: no slot skipped,
    # none handed out twice.
    assert scheduler._rr == total
    assert scheduler.placements_local + scheduler.placements_remote == total
    # Round-robin stayed balanced: every leaf got exactly its share.
    from collections import Counter

    by_leaf = Counter(
        p.leaf.worker_id for thread_placements in placements for p in thread_placements
    )
    assert set(by_leaf.values()) == {total // n_leaves}


def test_leaf_at_uses_address_map(fresh_cluster):
    scheduler = fresh_cluster.scheduler
    for leaf in scheduler.leaves():
        assert scheduler.leaf_at(leaf.address) is leaf
        assert fresh_cluster.leaf_at(leaf.address) is leaf
    from repro.sim.netmodel import NodeAddress

    assert scheduler.leaf_at(NodeAddress(9, 9, 9)) is None
