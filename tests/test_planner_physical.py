"""Physical planning: tasks, pruning, predicate split, projection."""

import numpy as np
import pytest

from repro.columnar.schema import DataType, Schema
from repro.columnar.table import Catalog
from repro.errors import PlanError
from repro.planner.physical import build_plan
from repro.sim.netmodel import TopologySpec
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.storage.loader import store_table
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS


@pytest.fixture(scope="module")
def env():
    nodes = TopologySpec(1, 2, 4).addresses()
    hdfs = DistributedFS(nodes)
    router = StorageRouter()
    router.register(hdfs, default=True)
    catalog = Catalog()
    n = 4000
    # c_sorted is monotonically increasing: block ranges become disjoint,
    # which makes range pruning effective.
    columns = {
        "c_sorted": np.arange(n, dtype=np.int64),
        "c2": np.tile(np.arange(10, dtype=np.int64), n // 10),
        "url": np.array([f"u{i % 5}" for i in range(n)], dtype=object),
        "val": np.linspace(0, 1, n),
    }
    schema = Schema.of(
        c_sorted=DataType.INT64, c2=DataType.INT64, url=DataType.STRING, val=DataType.FLOAT64
    )
    store_table("T", schema, columns, router, hdfs, block_rows=1000, catalog=catalog)
    dim = {"c2": np.arange(10, dtype=np.int64), "label": np.array([f"g{i}" for i in range(10)], dtype=object)}
    store_table(
        "D", Schema.of(c2=DataType.INT64, label=DataType.STRING), dim, router, hdfs,
        catalog=catalog,
    )
    return catalog


def _plan(catalog, sql):
    return build_plan(analyze(parse(sql), catalog))


def test_one_task_per_block(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T")
    assert len(plan.tasks) == 4
    assert plan.is_aggregate and not plan.has_joins


def test_range_pruning_on_sorted_column(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T WHERE c_sorted < 500")
    assert len(plan.tasks) == 1
    assert plan.pruned_blocks == 3


def test_equality_pruning(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T WHERE c_sorted = 2500")
    assert len(plan.tasks) == 1


def test_no_pruning_on_unsorted_column(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T WHERE c2 = 3")
    assert len(plan.tasks) == 4  # every block spans 0..9


def test_ne_and_contains_never_pruned(env):
    assert len(_plan(env, "SELECT COUNT(*) FROM T WHERE c_sorted != 1").tasks) == 4
    assert len(_plan(env, "SELECT COUNT(*) FROM T WHERE url CONTAINS 'u1'").tasks) == 4


def test_scan_columns_include_predicates_and_payload(env):
    plan = _plan(env, "SELECT SUM(val) FROM T WHERE c2 > 3")
    assert set(plan.tasks[0].columns) == {"c2", "val"}
    assert plan.payload_columns == ("val",)


def test_payload_excludes_filter_only_columns(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T WHERE c2 > 3 AND url CONTAINS 'u1'")
    assert plan.payload_columns == ()
    assert set(plan.tasks[0].columns) == {"c2", "url"}


def test_scan_cnf_split_with_join(env):
    plan = _plan(
        env,
        "SELECT label, COUNT(*) FROM T JOIN D ON T.c2 = D.c2 "
        "WHERE val > 0.5 AND label != 'g3' GROUP BY label",
    )
    # val > 0.5 is a base-table scan predicate; label != 'g3' crosses tables.
    assert plan.scan_cnf.predicate_keys() == ["val > 0.5"]
    assert plan.post_filter is not None
    assert len(plan.broadcasts) == 1
    assert plan.broadcasts[0].binding == "D"
    assert "label" in plan.broadcasts[0].columns


def test_comma_from_becomes_cross_broadcast(env):
    plan = _plan(env, "SELECT T.c2 FROM T, D WHERE T.c2 = D.c2")
    assert len(plan.broadcasts) == 1
    assert plan.broadcasts[0].binding == "D"
    from repro.sql.ast import JoinKind

    assert plan.broadcasts[0].kind is JoinKind.CROSS
    # the old-style join predicate lands in the post-join residual
    assert plan.post_filter is not None


def test_estimated_scan_bytes_positive(env):
    plan = _plan(env, "SELECT val FROM T")
    assert plan.estimated_scan_bytes() > 0


def test_or_clause_stays_indexable_unit(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T WHERE c2 > 8 OR c2 < 1")
    assert len(plan.scan_cnf.clauses) == 1
    assert plan.scan_cnf.clauses[0].is_indexable


def test_residual_where_goes_to_post_filter(env):
    plan = _plan(env, "SELECT COUNT(*) FROM T WHERE c2 + 1 > 5")
    assert plan.scan_cnf.clauses == []
    assert plan.post_filter is not None
    # the residual's column must still be read
    assert "c2" in plan.tasks[0].columns
