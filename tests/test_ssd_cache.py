"""SSD data-cache semantics (§IV-B): LRU + manual preferences."""

import pytest

from repro.errors import StorageError
from repro.storage.ssd_cache import SsdCache


def test_invalid_capacity():
    with pytest.raises(StorageError):
        SsdCache(0)


def test_preferred_only_admission_default():
    cache = SsdCache(100)
    assert not cache.put("/t/a", b"12345")  # not preferred: rejected
    cache.prefer("/t/")
    assert cache.put("/t/a", b"12345")
    assert cache.get("/t/a") == b"12345"


def test_admit_all_mode():
    cache = SsdCache(100, admit_preferred_only=False)
    assert cache.put("/x", b"abc")
    assert cache.get("/x") == b"abc"


def test_lru_eviction_order():
    cache = SsdCache(10, admit_preferred_only=False)
    cache.put("/a", b"1234")
    cache.put("/b", b"1234")
    cache.get("/a")          # touch /a: /b becomes LRU
    cache.put("/c", b"1234")  # evicts /b
    assert cache.get("/a") is not None
    assert cache.get("/b") is None
    assert cache.get("/c") is not None


def test_preferred_entries_survive_eviction_pressure():
    cache = SsdCache(10, admit_preferred_only=False)
    cache.prefer("/hot")
    cache.put("/hot/a", b"1234")
    cache.put("/cold/b", b"1234")
    cache.put("/cold/c", b"1234")  # must evict; sacrifices /cold/b
    assert cache.get("/hot/a") is not None
    assert cache.get("/cold/b") is None


def test_all_preferred_falls_back_to_lru():
    cache = SsdCache(8, admit_preferred_only=False)
    cache.prefer("/")
    cache.put("/a", b"1234")
    cache.put("/b", b"1234")
    cache.put("/c", b"1234")
    assert cache.entry_count == 2
    assert cache.get("/a") is None  # oldest preferred evicted


def test_oversized_object_rejected():
    cache = SsdCache(4, admit_preferred_only=False)
    assert not cache.put("/big", b"12345")


def test_overwrite_updates_bytes():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.put("/a", b"1234")
    cache.put("/a", b"12")
    assert cache.used_bytes == 2


def test_invalidate():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.put("/a", b"1234")
    cache.invalidate("/a")
    assert cache.get("/a") is None
    assert cache.used_bytes == 0


def test_miss_ratio_accounting():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.get("/a")            # miss
    cache.put("/a", b"1")
    cache.get("/a")            # hit
    cache.get("/b")            # miss
    assert cache.hits == 1 and cache.misses == 2
    assert cache.miss_ratio() == pytest.approx(2 / 3)
    stats = cache.stats()
    assert stats["entries"] == 1


def test_unprefer():
    cache = SsdCache(100)
    cache.prefer("/t/")
    cache.unprefer("/t/")
    assert not cache.put("/t/a", b"1")


# -- regressions: rejected updates must not leave stale bytes ------------


def test_rejected_oversized_update_invalidates_stale_entry():
    cache = SsdCache(4, admit_preferred_only=False)
    assert cache.put("/a", b"old")
    # The path is rewritten with a payload the cache cannot hold; the
    # old bytes must not keep being served.
    assert not cache.put("/a", b"12345")
    assert cache.get("/a") is None


def test_rejected_admission_update_invalidates_stale_entry():
    cache = SsdCache(100)
    cache.prefer("/t/")
    assert cache.put("/t/a", b"old")
    cache.unprefer("/t/")
    # Rewrite rejected by the preferred-only policy: stale copy must go.
    assert not cache.put("/t/a", b"new")
    assert cache.get("/t/a") is None


def test_rejected_preferred_pressure_update_drops_stale_entry():
    cache = SsdCache(8, admit_preferred_only=False)
    cache.prefer("/hot")
    cache.put("/hot/a", b"1234")
    cache.put("/x", b"12")
    # Growing /x to 6 bytes needs /hot/a evicted — refused for a
    # non-preferred insert — but the stale 2-byte /x must still go.
    assert not cache.put("/x", b"123456")
    assert cache.get("/x") is None
    assert cache.get("/hot/a") is not None


def test_invalidate_stale_reclassifies_hit():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.put("/a", b"old")
    assert cache.get("/a") == b"old"   # counted as a hit...
    cache.invalidate_stale("/a")       # ...but the bytes were stale
    assert cache.hits == 0 and cache.misses == 1
    assert cache.stale_invalidations == 1
    assert cache.get("/a") is None


# -- regressions: preference inversion -----------------------------------


def test_non_preferred_insert_never_evicts_preferred():
    cache = SsdCache(8, admit_preferred_only=False)
    cache.prefer("/hot")
    cache.put("/hot/a", b"1234")
    cache.put("/hot/b", b"1234")
    # Cache is full of preferred data; a non-preferred insert must be
    # rejected, not displace business-critical entries.
    assert not cache.put("/cold/x", b"1234")
    assert cache.get("/hot/a") is not None
    assert cache.get("/hot/b") is not None
    assert cache.rejected_for_preferred == 1


def test_preferred_insert_may_still_evict_preferred_lru():
    cache = SsdCache(8, admit_preferred_only=False)
    cache.prefer("/hot")
    cache.put("/hot/a", b"1234")
    cache.put("/hot/b", b"1234")
    assert cache.put("/hot/c", b"1234")  # preferred-for-preferred: LRU
    assert cache.get("/hot/a") is None
    assert cache.get("/hot/c") is not None


def test_preference_cache_invalidated_on_policy_change():
    cache = SsdCache(100, admit_preferred_only=False)
    assert not cache.is_preferred("/t/a")
    cache.prefer("/t/")
    assert cache.is_preferred("/t/a")
    cache.unprefer("/t/")
    assert not cache.is_preferred("/t/a")
