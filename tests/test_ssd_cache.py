"""SSD data-cache semantics (§IV-B): LRU + manual preferences."""

import pytest

from repro.errors import StorageError
from repro.storage.ssd_cache import SsdCache


def test_invalid_capacity():
    with pytest.raises(StorageError):
        SsdCache(0)


def test_preferred_only_admission_default():
    cache = SsdCache(100)
    assert not cache.put("/t/a", b"12345")  # not preferred: rejected
    cache.prefer("/t/")
    assert cache.put("/t/a", b"12345")
    assert cache.get("/t/a") == b"12345"


def test_admit_all_mode():
    cache = SsdCache(100, admit_preferred_only=False)
    assert cache.put("/x", b"abc")
    assert cache.get("/x") == b"abc"


def test_lru_eviction_order():
    cache = SsdCache(10, admit_preferred_only=False)
    cache.put("/a", b"1234")
    cache.put("/b", b"1234")
    cache.get("/a")          # touch /a: /b becomes LRU
    cache.put("/c", b"1234")  # evicts /b
    assert cache.get("/a") is not None
    assert cache.get("/b") is None
    assert cache.get("/c") is not None


def test_preferred_entries_survive_eviction_pressure():
    cache = SsdCache(10, admit_preferred_only=False)
    cache.prefer("/hot")
    cache.put("/hot/a", b"1234")
    cache.put("/cold/b", b"1234")
    cache.put("/cold/c", b"1234")  # must evict; sacrifices /cold/b
    assert cache.get("/hot/a") is not None
    assert cache.get("/cold/b") is None


def test_all_preferred_falls_back_to_lru():
    cache = SsdCache(8, admit_preferred_only=False)
    cache.prefer("/")
    cache.put("/a", b"1234")
    cache.put("/b", b"1234")
    cache.put("/c", b"1234")
    assert cache.entry_count == 2
    assert cache.get("/a") is None  # oldest preferred evicted


def test_oversized_object_rejected():
    cache = SsdCache(4, admit_preferred_only=False)
    assert not cache.put("/big", b"12345")


def test_overwrite_updates_bytes():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.put("/a", b"1234")
    cache.put("/a", b"12")
    assert cache.used_bytes == 2


def test_invalidate():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.put("/a", b"1234")
    cache.invalidate("/a")
    assert cache.get("/a") is None
    assert cache.used_bytes == 0


def test_miss_ratio_accounting():
    cache = SsdCache(100, admit_preferred_only=False)
    cache.get("/a")            # miss
    cache.put("/a", b"1")
    cache.get("/a")            # hit
    cache.get("/b")            # miss
    assert cache.hits == 1 and cache.misses == 2
    assert cache.miss_ratio() == pytest.approx(2 / 3)
    stats = cache.stats()
    assert stats["entries"] == 1


def test_unprefer():
    cache = SsdCache(100)
    cache.prefer("/t/")
    cache.unprefer("/t/")
    assert not cache.put("/t/a", b"1")
