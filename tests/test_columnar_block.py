"""Block construction, statistics, serialization, splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.block import Block, split_into_blocks
from repro.columnar.schema import DataType, Schema
from repro.errors import StorageError

SCHEMA = Schema.of(a=DataType.INT64, s=DataType.STRING, f=DataType.FLOAT64, b=DataType.BOOL)


def _columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    s = np.empty(n, dtype=object)
    for i in range(n):
        s[i] = f"val{i % 9}"
    return {
        "a": rng.integers(-50, 50, n),
        "s": s,
        "f": rng.random(n),
        "b": rng.integers(0, 2, n).astype(bool),
    }


def test_from_arrays_and_column_read():
    cols = _columns()
    block = Block.from_arrays("t.b0", SCHEMA, cols)
    assert block.num_rows == 100
    assert (block.column("a") == cols["a"]).all()
    assert list(block.column("s")) == list(cols["s"])
    assert (block.column("b") == cols["b"]).all()


def test_missing_chunk_rejected():
    with pytest.raises(StorageError, match="missing chunks"):
        Block("t.b0", SCHEMA, {}, 0)


def test_ragged_columns_rejected():
    cols = _columns()
    cols["a"] = cols["a"][:50]
    with pytest.raises(StorageError, match="ragged"):
        Block.from_arrays("t.b0", SCHEMA, cols)


def test_unknown_column_read_rejected():
    block = Block.from_arrays("t.b0", SCHEMA, _columns())
    with pytest.raises(StorageError):
        block.column("nope")


def test_stats_ranges():
    cols = _columns()
    block = Block.from_arrays("t.b0", SCHEMA, cols)
    stats = block.chunks["a"].stats
    assert stats.min_value == int(cols["a"].min())
    assert stats.max_value == int(cols["a"].max())
    assert stats.distinct_estimate == len(np.unique(cols["a"]))


def test_string_stats_have_bloom():
    block = Block.from_arrays("t.b0", SCHEMA, _columns())
    stats = block.chunks["s"].stats
    assert stats.bloom is not None
    assert not stats.range_excludes_equality("val3")
    assert stats.range_excludes_equality("zzz")  # beyond max


def test_range_excludes_equality_numeric():
    block = Block.from_arrays("t.b0", SCHEMA, _columns())
    stats = block.chunks["a"].stats
    assert stats.range_excludes_equality(10_000)
    assert not stats.range_excludes_equality(0)


def test_serialization_round_trip():
    cols = _columns()
    block = Block.from_arrays("t.b7", SCHEMA, cols, scale_factor=2.5)
    back = Block.from_bytes(block.to_bytes())
    assert back.block_id == "t.b7"
    assert back.num_rows == 100
    assert back.scale_factor == 2.5
    assert back.schema == SCHEMA
    for name in SCHEMA.names:
        a, b = block.column(name), back.column(name)
        assert list(a) == list(b)


def test_bad_magic_rejected():
    with pytest.raises(StorageError, match="magic"):
        Block.from_bytes(b"XXXX" + b"\x00" * 20)


def test_column_bytes_projection_accounting():
    block = Block.from_arrays("t.b0", SCHEMA, _columns())
    partial = block.column_bytes(["a", "f"])
    assert 0 < partial < block.total_bytes


def test_modeled_scaling():
    block = Block.from_arrays("t.b0", SCHEMA, _columns(), scale_factor=1000.0)
    assert block.modeled_rows == 100 * 1000.0
    assert block.modeled_bytes == block.total_bytes * 1000.0


def test_split_into_blocks_shapes():
    cols = _columns(n=95)
    blocks = split_into_blocks("t", SCHEMA, cols, block_rows=40)
    assert [b.num_rows for b in blocks] == [40, 40, 15]
    assert [b.block_id for b in blocks] == ["t.b0", "t.b1", "t.b2"]
    merged = np.concatenate([b.column("a") for b in blocks])
    assert (merged == cols["a"]).all()


def test_split_invalid_block_rows():
    with pytest.raises(StorageError):
        split_into_blocks("t", SCHEMA, _columns(), block_rows=0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=64),
)
def test_property_split_preserves_data(values, block_rows):
    schema = Schema.of(x=DataType.INT64)
    cols = {"x": np.array(values, dtype=np.int64)}
    blocks = split_into_blocks("t", schema, cols, block_rows=block_rows)
    merged = np.concatenate([b.column("x") for b in blocks])
    assert list(merged) == values
    assert sum(b.num_rows for b in blocks) == len(values)
