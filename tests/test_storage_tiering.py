"""Heat-based adaptive tiering (S50): tracker, daemon, cluster wiring."""

import math

import numpy as np
import pytest

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.client import FeisuClient
from repro.cluster.node import LeafConfig
from repro.errors import FaultInjectedError
from repro.sim.events import Simulator
from repro.sim.netmodel import NetworkTopology, TopologySpec
from repro.storage.router import StorageRouter
from repro.storage.ssd_cache import SsdCache
from repro.storage.systems import DistributedFS, FatmanFS
from repro.storage.tiering import HeatTracker, TieringDaemon

from tests.conftest import CLICKS_SCHEMA, make_clicks_columns

NODES = TopologySpec(1, 2, 4).addresses()


# -- HeatTracker ----------------------------------------------------------


def test_heat_accumulates_and_decays():
    tracker = HeatTracker(half_life_s=100.0)
    tracker.record("/ffs/b0", 1000, now=0.0)
    tracker.record("/ffs/b0", 1000, now=0.0)
    assert tracker.heat("/ffs/b0", 0.0) == pytest.approx(2.0)
    # One half-life later the mass has halved.
    assert tracker.heat("/ffs/b0", 100.0) == pytest.approx(1.0)
    assert tracker.heat("/ffs/b0", 200.0) == pytest.approx(0.5)
    assert tracker.heat("/never", 0.0) == 0.0


def test_heat_blends_recency_into_frequency():
    tracker = HeatTracker(half_life_s=50.0)
    for t in (0.0, 10.0, 20.0):
        tracker.record("/old", 10, now=t)
    tracker.record("/new", 10, now=200.0)
    tracker.record("/new", 10, now=200.0)
    # Three stale accesses lose to two fresh ones.
    assert tracker.heat("/new", 200.0) > tracker.heat("/old", 200.0)


def test_top_reader_and_nbytes():
    tracker = HeatTracker()
    a, b = NODES[0], NODES[1]
    tracker.record("/p", 500, reader=a, now=0.0)
    tracker.record("/p", 900, reader=b, now=0.0)
    tracker.record("/p", 100, reader=b, now=0.0)
    assert tracker.top_reader("/p") == b
    assert tracker.nbytes("/p") == 900  # max observed charge
    assert tracker.top_reader("/none") is None


def test_hottest_orders_and_drops_zero():
    tracker = HeatTracker(half_life_s=1.0)
    tracker.record("/a", 1, now=0.0)
    tracker.record("/b", 1, now=0.0)
    tracker.record("/b", 1, now=0.0)
    ranked = tracker.hottest(0.0, 5)
    assert [p for p, _ in ranked] == ["/b", "/a"]
    # After many half-lives both are effectively cold but non-zero
    # mathematically; hottest() still ranks, zero entries are dropped.
    assert tracker.hottest(0.0, 1) == [("/b", pytest.approx(2.0))]


def test_tracker_rejects_bad_half_life():
    with pytest.raises(ValueError):
        HeatTracker(half_life_s=0.0)


# -- TieringDaemon units --------------------------------------------------


def _tier_env(**daemon_kwargs):
    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    nodes = spec.addresses()
    router = StorageRouter()
    hot = DistributedFS(nodes, seed=3)
    cold = FatmanFS(nodes, seed=4)
    router.register(hot, default=True)
    router.register(cold)
    daemon_kwargs.setdefault("period_s", 10.0)
    daemon = TieringDaemon(sim, net, router, hot_system=hot, **daemon_kwargs)
    return sim, net, router, hot, cold, daemon


def _heat_up(daemon, path, nbytes, reader, times):
    for t in times:
        daemon.record_access(path, nbytes, reader=reader, now=t)


def test_promotion_copies_cold_block_near_top_reader():
    sim, net, router, hot, cold, daemon = _tier_env()
    cold.write("/t/b0", b"x" * 2000)
    reader = next(n for n in NODES if n not in cold.locations("/t/b0"))
    _heat_up(daemon, "/ffs/t/b0", 2000, reader, [0.0] * 5)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.promotions == 1
    assert daemon.stats.promoted_bytes == 2000
    hot_full = daemon.effective_path("/ffs/t/b0")
    assert hot_full != "/ffs/t/b0" and hot_full.startswith("/hdfs/_tier/ffs")
    assert daemon.tier_of("/ffs/t/b0") == "promoted"
    # Copy, not move: cold replicas intact, hot copy fully replicated
    # with its first replica on the dominant reader.
    assert len(cold.locations("/t/b0")) == cold.replication
    _, hot_inner = router.resolve(hot_full)
    assert hot.read(hot_inner) == b"x" * 2000
    holders = hot.locations(hot_inner)
    assert holders[0] == reader
    assert len(holders) == hot.replication
    assert len(set(holders)) == len(holders)
    # The promotion traffic was actually charged to the network.
    assert sum(ln.bytes_carried for ln in net.links()) >= 2000


def test_cold_block_below_threshold_not_promoted():
    sim, _, _, _, cold, daemon = _tier_env()
    cold.write("/t/b0", b"x" * 100)
    _heat_up(daemon, "/ffs/t/b0", 100, NODES[0], [0.0])  # heat 1 < 3
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.promotions == 0
    assert daemon.effective_path("/ffs/t/b0") == "/ffs/t/b0"


def test_hot_substrate_paths_never_promoted():
    sim, _, _, hot, _, daemon = _tier_env()
    hot.write("/t/b0", b"x" * 100)
    _heat_up(daemon, "/hdfs/t/b0", 100, NODES[0], [0.0] * 10)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.promotions == 0
    assert daemon.tier_of("/hdfs/t/b0") == "hot"
    assert daemon.tier_of("/ffs/anything") == "cold"


def test_promotion_retry_is_idempotent_after_lost_publish():
    sim, net, router, hot, cold, daemon = _tier_env()
    cold.write("/t/b0", b"y" * 500)
    _heat_up(daemon, "/ffs/t/b0", 500, NODES[0], [0.0] * 5)
    # Simulate a crash after the hot write but before the hint publish:
    # the hot copy already exists when the next cycle retries.
    hot.write("/_tier/ffs/t/b0", b"y" * 500, node=NODES[0])
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.adopted_promotions == 1
    assert daemon.stats.promotions == 0  # no second copy was transferred
    assert sum(ln.bytes_carried for ln in net.links()) == 0
    holders = hot.locations("/_tier/ffs/t/b0")
    assert len(set(holders)) == len(holders)  # no double-counted replica
    assert daemon.effective_path("/ffs/t/b0").endswith("/_tier/ffs/t/b0")


def test_faulted_promotion_is_counted_and_retried():
    sim, net, router, hot, cold, daemon = _tier_env()
    cold.write("/t/b0", b"z" * 300)
    _heat_up(daemon, "/ffs/t/b0", 300, NODES[0], [0.0] * 5)

    class _FailingNet:
        def distance(self, a, b):
            return net.distance(a, b)

        def transfer(self, *a, **k):
            raise FaultInjectedError("injected mid-promotion")

    daemon.net = _FailingNet()
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.failed_promotions == 1
    assert daemon.stats.promotions == 0
    assert daemon.effective_path("/ffs/t/b0") == "/ffs/t/b0"  # no hint
    assert not hot.exists("/_tier/ffs/t/b0")  # no half-written copy
    # Fault clears: the next cycle completes the promotion.
    daemon.net = net
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.promotions == 1


def test_demotion_on_heat_decay_removes_hint_and_copy():
    sim, _, router, hot, cold, daemon = _tier_env()
    cold.write("/t/b0", b"w" * 400)
    _heat_up(daemon, "/ffs/t/b0", 400, NODES[0], [0.0] * 5)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.tier_of("/ffs/t/b0") == "promoted"
    hot_full = daemon.effective_path("/ffs/t/b0")
    _, hot_inner = router.resolve(hot_full)
    # Far past many half-lives, the block is cold again.
    sim.run(until=sim.now + 5000.0)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.demotions == 1
    assert daemon.effective_path("/ffs/t/b0") == "/ffs/t/b0"
    assert not hot.exists(hot_inner)
    assert cold.exists("/t/b0")  # the cold copy was never touched


def test_byte_budget_limits_promotions():
    sim, _, _, _, cold, daemon = _tier_env(max_promoted_bytes=500)
    cold.write("/t/big", b"x" * 900)
    cold.write("/t/small", b"x" * 100)
    _heat_up(daemon, "/ffs/t/big", 900, NODES[0], [0.0] * 5)
    _heat_up(daemon, "/ffs/t/small", 100, NODES[0], [0.0] * 5)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.effective_path("/ffs/t/small") != "/ffs/t/small"
    assert daemon.effective_path("/ffs/t/big") == "/ffs/t/big"  # over budget


def test_auto_preferences_follow_heat():
    sim, _, _, _, cold, daemon = _tier_env(prefer_top_k=1)
    cache = SsdCache(1000, admit_preferred_only=True)
    daemon.attach_cache(cache)
    cold.write("/t/b0", b"x" * 200)
    _heat_up(daemon, "/ffs/t/b0", 200, NODES[0], [0.0] * 5)
    sim.run_until_complete(sim.process(daemon.run_once()))
    # The hottest path is preferred under both its cold name and the
    # promoted hot alias.
    prefs = cache.preferred_prefixes()
    assert "/ffs/t/b0" in prefs
    assert daemon.effective_path("/ffs/t/b0") in prefs
    # Heat decays away: preferences are retracted.
    sim.run(until=sim.now + 5000.0)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert cache.preferred_prefixes() == set()
    # A cache attached later inherits the current preference set.
    _heat_up(daemon, "/ffs/t/b0", 200, NODES[0], [sim.now] * 5)
    sim.run_until_complete(sim.process(daemon.run_once()))
    late = SsdCache(1000)
    daemon.attach_cache(late)
    assert "/ffs/t/b0" in late.preferred_prefixes()


def test_replica_extension_follows_new_dominant_reader():
    sim, _, router, hot, cold, daemon = _tier_env()
    cold.write("/t/b0", b"x" * 200)
    first_reader = NODES[0]
    _heat_up(daemon, "/ffs/t/b0", 200, first_reader, [0.0] * 5)
    sim.run_until_complete(sim.process(daemon.run_once()))
    hot_full = daemon.effective_path("/ffs/t/b0")
    _, hot_inner = router.resolve(hot_full)
    outside = next(n for n in NODES if n not in hot.locations(hot_inner))
    # The read mix shifts: a node outside the replica set dominates.
    _heat_up(daemon, "/ffs/t/b0", 200, outside, [sim.now] * 20)
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.replica_extensions == 1
    holders = hot.locations(hot_inner)
    assert outside in holders
    assert len(set(holders)) == len(holders)


def test_background_loop_runs_on_simulated_clock():
    sim, _, _, _, cold, daemon = _tier_env(period_s=5.0)
    cold.write("/t/b0", b"x" * 100)
    _heat_up(daemon, "/ffs/t/b0", 100, NODES[0], [0.0] * 5)
    daemon.start()
    daemon.start()  # second start is a no-op
    sim.run(until=12.0)
    assert daemon.stats.cycles >= 2
    assert daemon.stats.promotions == 1


# -- cluster wiring -------------------------------------------------------


def _tiered_cluster(**leaf_kwargs):
    leaf_kwargs.setdefault("enable_tiering", True)
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            leaf=LeafConfig(**leaf_kwargs),
        )
    )
    return cluster


def test_flag_off_constructs_no_daemon():
    cluster = FeisuCluster(FeisuConfig(nodes_per_rack=2))
    assert cluster.tiering is None
    assert cluster.scheduler.tiering is None
    assert all(leaf.tiering is None for leaf in cluster.leaves)


def test_cluster_promotes_hot_fatman_blocks_end_to_end():
    cluster = _tiered_cluster(enable_smartindex=False)
    cluster.tiering.promote_threshold = 2.0
    columns = make_clicks_columns(2000, seed=3)
    cluster.load_table("F", CLICKS_SCHEMA, columns, storage="fatman", block_rows=1000)
    expected = int((columns["c1"] < 50).sum())
    for _ in range(4):
        result = cluster.query("SELECT COUNT(*) FROM F WHERE c1 < 50")
        assert result.rows()[0][0] == expected
        cluster.sim.run(until=cluster.sim.now + 40.0)  # let the daemon fire
    assert cluster.tiering.stats.promotions >= 1
    promoted = cluster.tiering.promoted_paths()
    assert promoted and all(p.startswith("/ffs/") for p in promoted)
    # Correctness after promotion: reads serve the hot copy.
    result = cluster.query("SELECT COUNT(*) FROM F WHERE c1 < 50")
    assert result.rows()[0][0] == expected


def test_explain_analyze_reports_actual_tier():
    cluster = _tiered_cluster(enable_smartindex=False)
    cluster.tiering.promote_threshold = 2.0
    columns = make_clicks_columns(2000, seed=3)
    cluster.load_table("F", CLICKS_SCHEMA, columns, storage="fatman", block_rows=1000)
    cluster.create_user("ea", admin=True)
    client = FeisuClient(cluster, "ea")
    text = client.explain_analyze("SELECT COUNT(*) FROM F WHERE c1 < 50")
    assert "actual tier:" in text and "cold" in text
    for _ in range(3):
        cluster.query("SELECT COUNT(*) FROM F WHERE c1 < 50")
        cluster.sim.run(until=cluster.sim.now + 40.0)
    text2 = client.explain_analyze("SELECT COUNT(*) FROM F WHERE c1 < 50")
    assert "actual tier:" in text2 and "promoted" in text2


def test_explain_analyze_has_no_tier_line_without_tiering(fresh_cluster):
    fresh_cluster.create_user("notier", admin=True)
    client = FeisuClient(fresh_cluster, "notier")
    text = client.explain_analyze("SELECT COUNT(*) FROM T WHERE c1 < 50")
    assert "actual tier:" not in text


def test_leaf_overwrite_then_read_serves_fresh_bytes():
    """PR 5 staleness regression, end to end: rewriting a table's blocks
    must invalidate the SSD-cached payloads, not serve stale rows."""
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            leaf=LeafConfig(
                enable_smartindex=False,
                enable_ssd_cache=True,
                ssd_admit_preferred_only=False,
            ),
        )
    )
    n = 2000
    v1 = {
        **make_clicks_columns(n, seed=3),
        "c1": np.zeros(n, dtype=np.int64),
    }
    cluster.load_table("T", CLICKS_SCHEMA, v1, storage="storage-a", block_rows=1000)
    assert cluster.query("SELECT COUNT(*) FROM T WHERE c1 < 50").rows()[0][0] == n
    # Cached: a second run hits the SSD cache.
    assert cluster.query("SELECT COUNT(*) FROM T WHERE c1 < 50").rows()[0][0] == n
    assert sum(leaf.ssd_cache.hits for leaf in cluster.leaves) > 0
    # The ingestion process rewrites every block in place (same paths,
    # same block ids — only the contents change).
    from repro.storage.loader import store_table

    v2 = {**v1, "c1": np.full(n, 99, dtype=np.int64)}
    store_table(
        "T", CLICKS_SCHEMA, v2, cluster.router,
        cluster.storage_by_name("storage-a"), block_rows=1000,
    )
    result = cluster.query("SELECT COUNT(*) FROM T WHERE c1 < 50")
    assert result.rows()[0][0] == 0  # stale cache would answer 2000
    assert sum(leaf.ssd_cache.stale_invalidations for leaf in cluster.leaves) > 0


def test_repair_restores_layout_variant_with_metadata():
    """S54 satellite pin: a replica is its bytes *plus* its physical
    layout.  Re-replicating from a source that serves a rewritten variant
    must copy the variant bytes and its metadata — a repair that silently
    reverts new copies to the base layout loses the Trojan design the
    daemon paid to build."""
    from repro.storage.maintenance import ReplicaRepairer

    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    fs = DistributedFS(spec.addresses(), seed=3)
    fs.write("/f", b"x" * 1000)
    holders = fs.locations("/f")
    variant = b"v" * 400
    meta = {"spec": {"sort": "c1", "columns": ["c1"], "index": None,
                     "copartition": None}, "num_rows": 10}
    fs.set_replica_variant("/f", holders[0], variant, meta=meta)
    # Lose both base-only copies: the sole survivor serves the variant.
    for node in holders[1:]:
        fs.drop_replica("/f", node)
    repairer = ReplicaRepairer(sim, net, fs)
    report = sim.run_until_complete(sim.process(repairer.repair_once()))
    assert report.repairs_done == 2
    assert report.bytes_copied == 2 * len(variant)  # variant shipped, not base
    for node in fs.locations("/f"):
        assert fs.replica_variant("/f", node) == variant
        assert fs.replica_meta("/f", node) == meta
    assert fs.read("/f") == b"x" * 1000  # base payload stays authoritative


def test_repair_skips_stale_variant_after_inflight_rewrite():
    """S55 satellite pin: the repairer captures the source's variant
    *before* the copy transfer and previously published it unconditionally
    after — so a block write (or layout rewrite) landing while the copy
    was in flight left the new replica serving a variant no live copy
    matched.  The fix re-checks the source after the transfer and falls
    back to the base payload when the captured variant went stale."""
    from repro.storage.maintenance import ReplicaRepairer

    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    fs = DistributedFS(spec.addresses(), seed=3)
    fs.write("/f", b"x" * 1000)
    holders = fs.locations("/f")
    variant = b"v" * 1_000_000  # big enough that the copy takes sim time
    meta = {"spec": {"sort": "c1"}, "num_rows": 10}
    fs.set_replica_variant("/f", holders[0], variant, meta=meta)
    for node in holders[1:]:
        fs.drop_replica("/f", node)
    repairer = ReplicaRepairer(sim, net, fs)
    proc = sim.process(repairer.repair_once())
    # Mid-transfer, the block is rewritten: every variant overlay is
    # invalidated, so the bytes in flight no longer match any live copy.
    sim.schedule(1e-4, lambda: fs.write("/f", b"y" * 1000))
    report = sim.run_until_complete(proc)
    assert report.repairs_done >= 1
    for node in fs.locations("/f"):
        # No replica may publish the stale pre-rewrite variant.
        assert fs.replica_variant("/f", node) is None
        assert fs.replica_meta("/f", node) is None
    assert fs.read("/f") == b"y" * 1000


def test_repair_honors_liveness_predicate():
    """S55 satellite pin: ``_pick_target`` had no liveness filter, so a
    repair could "restore" replication onto a dead or draining node —
    bytes parked where no scan will ever read them.  The optional
    ``liveness`` hook (wired to ``ClusterManager.is_alive`` by the
    elastic manager) keeps repairs on serving nodes."""
    from repro.storage.maintenance import ReplicaRepairer

    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    nodes = spec.addresses()
    fs = DistributedFS(nodes, seed=3)
    fs.write("/f", b"x" * 500)
    holders = fs.locations("/f")
    for node in holders[1:]:
        fs.drop_replica("/f", node)
    survivor = holders[0]
    allowed = next(n for n in nodes if n != survivor)
    repairer = ReplicaRepairer(
        sim, net, fs, liveness=lambda n: n == survivor or n == allowed
    )
    report = sim.run_until_complete(sim.process(repairer.repair_once()))
    # Only one eligible target exists: one repair lands there, the other
    # copy is unrepairable rather than parked on an ineligible node.
    assert report.repairs_done == 1
    assert set(fs.locations("/f")) == {survivor, allowed}
    assert "/f" in report.unrepairable
