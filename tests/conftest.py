"""Shared fixtures: a small wired cluster and reference datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType


def make_clicks_columns(n: int = 6000, seed: int = 5):
    """A small URL-click table with known contents."""
    rng = np.random.default_rng(seed)
    return {
        "c1": rng.integers(0, 100, n),
        "c2": rng.integers(0, 10, n),
        "url": np.array(
            [f"http://site{i % 7}.example.com/p{i % 13}" for i in range(n)], dtype=object
        ),
        "clicks": rng.random(n),
        "province": np.array(
            [["beijing", "shanghai", "guangdong"][i % 3] for i in range(n)], dtype=object
        ),
    }


CLICKS_SCHEMA = Schema.of(
    c1=DataType.INT64,
    c2=DataType.INT64,
    url=DataType.STRING,
    clicks=DataType.FLOAT64,
    province=DataType.STRING,
)


@pytest.fixture(scope="module")
def small_cluster():
    """One-datacenter cluster with table T loaded on storage A and a
    dimension table D, shared across a test module."""
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    columns = make_clicks_columns()
    cluster.load_table("T", CLICKS_SCHEMA, columns, storage="storage-a", block_rows=1500)
    dim = {
        "c2": np.arange(10),
        "label": np.array([f"grp{i}" for i in range(10)], dtype=object),
        "weight": np.linspace(0.1, 1.0, 10),
    }
    cluster.load_table(
        "D",
        Schema.of(c2=DataType.INT64, label=DataType.STRING, weight=DataType.FLOAT64),
        dim,
        storage="storage-b",
        block_rows=100,
    )
    cluster._test_columns = columns  # stashed for assertions
    cluster._test_dim = dim
    return cluster


@pytest.fixture()
def fresh_cluster():
    """A pristine cluster per test (for stateful index/scheduling tests)."""
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    columns = make_clicks_columns(3000, seed=11)
    cluster.load_table("T", CLICKS_SCHEMA, columns, storage="storage-a", block_rows=1000)
    cluster._test_columns = columns
    return cluster
