"""Shared reference-execution oracle for differential tests.

A deliberately simple row-at-a-time interpreter executes the same SQL
over the same data as the distributed engine; results must match exactly
(modulo float tolerance and row order for unordered queries).  Used by
the randomized differential suite, the soak test, and the chaos matrix's
:class:`~repro.faults.invariants.InvariantMonitor` safety check.
"""

import math
from typing import Callable, Dict, List, Optional, Tuple

import pytest

from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    FunctionCall,
    Literal,
    Negate,
    NotOp,
    Star,
)
from repro.sql.parser import parse

# -- the naive reference engine ---------------------------------------------


def _ref_scalar(expr, row):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        if expr.table is not None:
            return row[f"{expr.table}.{expr.name}"]
        return row[expr.name]
    if isinstance(expr, Negate):
        return -_ref_scalar(expr.operand, row)
    if isinstance(expr, NotOp):
        return not _ref_scalar(expr.operand, row)
    if isinstance(expr, FunctionCall):
        args = [_ref_scalar(a, row) for a in expr.args]
        return {
            "LENGTH": lambda: len(args[0]),
            "LOWER": lambda: args[0].lower(),
            "UPPER": lambda: args[0].upper(),
            "ABS": lambda: abs(args[0]),
        }[expr.name]()
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op is BinaryOperator.AND:
            return bool(_ref_scalar(expr.left, row)) and bool(_ref_scalar(expr.right, row))
        if op is BinaryOperator.OR:
            return bool(_ref_scalar(expr.left, row)) or bool(_ref_scalar(expr.right, row))
        left, right = _ref_scalar(expr.left, row), _ref_scalar(expr.right, row)
        return {
            BinaryOperator.EQ: lambda: left == right,
            BinaryOperator.NE: lambda: left != right,
            BinaryOperator.LT: lambda: left < right,
            BinaryOperator.LE: lambda: left <= right,
            BinaryOperator.GT: lambda: left > right,
            BinaryOperator.GE: lambda: left >= right,
            BinaryOperator.CONTAINS: lambda: right in left,
            BinaryOperator.ADD: lambda: left + right,
            BinaryOperator.SUB: lambda: left - right,
            BinaryOperator.MUL: lambda: left * right,
            BinaryOperator.DIV: lambda: left / right if right != 0 else math.inf * (1 if left > 0 else -1) if left != 0 else math.nan,
            BinaryOperator.MOD: lambda: left % right if right != 0 else math.nan,
        }[op]()
    raise AssertionError(f"reference engine: unhandled node {expr}")


def _ref_aggregate(func, values):
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "AVG":
        return sum(values) / len(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    raise AssertionError(func)


def _qualify(row, binding):
    """One table's row with both bare and binding-qualified keys."""
    out = dict(row)
    for key, value in row.items():
        out[f"{binding}.{key}"] = value
    return out


def _joined_rows(query, rows, join_tables):
    """Nested-loop inner joins for the reference engine."""
    base_binding = query.tables[0].binding
    current = [_qualify(r, base_binding) for r in rows]
    for join in query.joins:
        binding = join.table.binding
        dim_rows = [_qualify(r, binding) for r in join_tables[join.table.name]]
        merged = []
        for left in current:
            for right in dim_rows:
                # bare-name collisions resolve in favour of qualified use;
                # generated queries qualify any shared column.
                combined = {**right, **left}
                combined.update({k: v for k, v in right.items() if "." in k})
                if join.condition is None or _ref_scalar(join.condition, combined):
                    merged.append(combined)
        current = merged
    return current


def reference_execute(sql, rows, join_tables=None):
    """Reference implementation over lists of row dicts.

    ``join_tables`` maps table names to dimension rows for queries with
    INNER JOINs (the only kind the generators emit).
    """
    query = parse(sql)
    if query.joins:
        rows = _joined_rows(query, rows, join_tables or {})
    data = [r for r in rows if query.where is None or _ref_scalar(query.where, r)]
    select_exprs = [item.expr for item in query.select_items]
    aliases = {item.alias: item.expr for item in query.select_items if item.alias}

    def dealias(expr):
        if isinstance(expr, Column) and expr.table is None and expr.name in aliases:
            return aliases[expr.name]
        return expr

    query = type(query)(
        select_items=query.select_items,
        tables=query.tables,
        joins=query.joins,
        where=query.where,
        group_by=tuple(dealias(g) for g in query.group_by),
        having=query.having,
        order_by=query.order_by,
        limit=query.limit,
    )
    aggregates = []
    for expr in select_exprs + ([query.having] if query.having else []):
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, AggregateCall):
                aggregates.append(node)
            elif node is not None and hasattr(node, "children"):
                stack.extend(node.children())
    group_keys = list(query.group_by)
    for agg in aggregates:
        if agg.within is not None and agg.within not in group_keys:
            group_keys.append(agg.within)

    if aggregates or group_keys:
        groups = {}
        for r in data:
            key = tuple(_ref_scalar(k, r) for k in group_keys)
            groups.setdefault(key, []).append(r)
        if not group_keys and not groups:
            groups[()] = []  # global aggregate over zero rows: one row
        out_rows = []
        for key, members in groups.items():
            env = dict(zip([str(k) for k in group_keys], key))

            def agg_value(agg):
                if isinstance(agg.argument, Star):
                    return len(members)
                value = _ref_aggregate(
                    agg.func, [_ref_scalar(agg.argument, m) for m in members]
                )
                if value is not None:
                    return value
                # Mirror the engine's NULL-defaulting by output type.
                if agg.func == "AVG":
                    return math.nan
                sample = _ref_scalar(agg.argument, rows[0]) if rows else 0
                if isinstance(sample, float):
                    return math.nan
                if isinstance(sample, str):
                    return ""
                return 0

            def expr_value(expr, rep):
                if isinstance(expr, AggregateCall):
                    return agg_value(expr)
                if expr in group_keys:
                    return key[group_keys.index(expr)]
                if isinstance(expr, BinaryOp):
                    # rebuild from parts (sufficient for generated queries)
                    return _ref_scalar(expr, rep)
                if isinstance(expr, Literal):
                    return expr.value
                return _ref_scalar(expr, rep)

            rep = members[0] if members else {}
            if query.having is not None:
                h = query.having

                def having_value(expr):
                    if isinstance(expr, AggregateCall):
                        return agg_value(expr)
                    if isinstance(expr, BinaryOp):
                        left = having_value(expr.left)
                        right = having_value(expr.right)
                        return _ref_scalar(
                            BinaryOp(expr.op, Literal(left), Literal(right)), rep
                        )
                    if isinstance(expr, NotOp):
                        return not having_value(expr.operand)
                    return _ref_scalar(expr, rep)

                if not having_value(h):
                    continue
            out_rows.append(tuple(expr_value(e, rep) for e in select_exprs))
    else:
        out_rows = [tuple(_ref_scalar(e, r) for e in select_exprs) for r in data]

    alias_map = {
        (item.alias or str(item.expr)): i for i, item in enumerate(query.select_items)
    }
    if query.order_by:
        def sort_key(row):
            parts = []
            for item in query.order_by:
                expr = item.expr
                if isinstance(expr, Column) and expr.name in alias_map:
                    v = row[alias_map[expr.name]]
                else:
                    v = row[alias_map.get(str(expr), 0)] if str(expr) in alias_map else None
                parts.append(v)
            return parts

        # stable multi-key sort honoring per-key direction
        for item, _ in zip(reversed(query.order_by), range(len(query.order_by))):
            expr = item.expr
            idx = alias_map.get(
                expr.name if isinstance(expr, Column) else str(expr), None
            )
            assert idx is not None, "generated ORDER BY must target an output"
            out_rows.sort(key=lambda r: r[idx], reverse=not item.ascending)
    if query.limit is not None:
        out_rows = out_rows[: query.limit]
    return out_rows


# -- comparison helpers --------------------------------------------------------


def _match(value_a, value_b):
    if isinstance(value_a, float) or isinstance(value_b, float):
        if value_a is None or value_b is None:
            return value_a == value_b
        if math.isnan(value_a) and math.isnan(value_b):
            return True
        return value_a == pytest.approx(value_b, rel=1e-9, abs=1e-9)
    return value_a == value_b


def _row_dicts(cols):
    n = len(next(iter(cols.values())))
    return [
        {name: (arr[i].item() if arr.dtype != object else arr[i]) for name, arr in cols.items()}
        for i in range(n)
    ]


def compare_rows(got: List[Tuple], expected: List[Tuple]) -> Optional[str]:
    """None when row lists match; otherwise a description of the first
    divergence (for invariant-violation reports)."""
    if len(got) != len(expected):
        return f"row count {len(got)} != expected {len(expected)}"
    for i, (row_a, row_b) in enumerate(zip(got, expected)):
        if len(row_a) != len(row_b):
            return f"row {i} width {len(row_a)} != expected {len(row_b)}"
        for a, b in zip(row_a, row_b):
            if not _match(a, b):
                return f"row {i}: got {row_a!r}, expected {row_b!r}"
    return None


def oracle_for(columns, join_tables_columns=None) -> Callable:
    """An ``oracle(sql, result)`` closure over column arrays, in the shape
    :class:`~repro.faults.invariants.InvariantMonitor` consumes."""
    rows = _row_dicts(columns)
    join_tables = (
        {name: _row_dicts(cols) for name, cols in join_tables_columns.items()}
        if join_tables_columns
        else None
    )

    def oracle(sql: str, result) -> Optional[str]:
        expected = reference_execute(sql, rows, join_tables)
        return compare_rows(result.rows(), expected)

    return oracle
