"""Chaos: a layout rewrite dies mid-publish (S54).

The layout daemon ships each rewritten replica across the fabric and only
publishes the variant after the transfer lands.  A total WRITE-class drop
window must therefore leave *nothing* half-published: no variant appears,
the base payload keeps serving every read, the replication floor holds,
and the retry after the window clears lands the variant idempotently.
"""

from repro.cluster.jobs import JobStatus
from repro.cluster.node import LeafConfig
from repro.faults import FaultPlan, MessageDrop
from repro.sim.netmodel import TrafficClass

from tests.chaos.conftest import DEFAULT_SEED, make_harness

SUCCEEDED = JobStatus.SUCCEEDED


def test_crash_mid_layout_rewrite_keeps_replicas_readable(seed):
    """Kill every layout-rewrite transfer for 60s: publish-after-write
    means no variant may appear inside the window, answers stay exact on
    the base payload throughout, no block drops below the replication
    floor, and the daemon's retry publishes the variant once the fabric
    heals."""
    harness = make_harness(
        seed, leaf=LeafConfig(enable_smartindex=False, enable_layouts=True)
    )
    daemon = harness.cluster.layouts
    daemon.period_s = 15.0
    storage = harness.cluster.storage_a
    blocks = harness.cluster.catalog.get("T").blocks
    inners = [harness.cluster.router.resolve(b.path)[1] for b in blocks]

    # Every rewrite crosses the fabric (the source holder ships the
    # variant to the target holder), so a total WRITE drop kills each
    # attempt mid-transfer.  Window covers daemon cycles at ~15/30/45.
    harness.install(
        FaultPlan().add(
            MessageDrop(probability=1.0, cls=TrafficClass.WRITE, at=0.0, duration=60.0)
        )
    )

    # Seed census + heat inside the window: repeated c1 range predicates
    # give every T block a dominant sortable predicate column and >= 3
    # recorded scans (heat above the daemon's threshold), and the join
    # adds the co-partition signal.
    for sql in (harness.Q_COUNT, harness.Q_JOIN, harness.Q_COUNT):
        job = harness.run(sql)
        assert job.status is SUCCEEDED, job.error

    # Let the in-window cycles fire.  Publish-after-write: a dropped
    # transfer must leave no variant behind — every replica still serves
    # the base bytes.
    harness.sim.run(until=55.0)
    assert all(storage.variant_nodes(inner) == [] for inner in inners)
    during = harness.run(harness.Q_GROUP)
    assert during.status is SUCCEEDED, during.error
    if seed == DEFAULT_SEED:
        assert daemon.stats.failed_rewrites >= 1  # the window did bite
        assert daemon.stats.rewrites == 0

    # Replication floor never depended on the variants: the base payload
    # in the storage system is untouched by the whole affair.
    for inner in inners:
        assert len(storage.locations(inner)) >= storage.replication

    # Fabric heals at t=60; keep the blocks hot so post-window cycles
    # retry the identical rewrite and publish it.
    for _ in range(4):
        job = harness.run(harness.Q_COUNT)
        assert job.status is SUCCEEDED, job.error
        harness.sim.run(until=harness.sim.now + 20.0)

    assert daemon.stats.rewrites >= 1  # the retry landed
    assert any(storage.variant_nodes(inner) for inner in inners)
    for inner in inners:
        # Heterogeneous copies, same block: floor still holds and the
        # base payload is still the readable source of truth.
        assert len(storage.locations(inner)) >= storage.replication
        assert storage.read(inner) is not None
    after = harness.run(harness.Q_GROUP)
    assert after.status is SUCCEEDED, after.error
    if seed == DEFAULT_SEED:
        assert daemon.stats.variant_reads >= 1  # routing reached a variant
    harness.finish("crash_mid_layout_rewrite")
