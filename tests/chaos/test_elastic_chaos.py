"""Chaos: kills mid-migration and mid-drain (S55).

The rebalancer's block moves and the decommission drain both lean on
publish-after-write copies.  A total WRITE-class drop window therefore
must leave *nothing* half-moved: no block lost, no holder double-counted,
no replica stranded on a node that already left — and once the fabric
heals, the retries finish the exact work the kill interrupted.
"""

import pytest

from repro.cluster.elastic import ElasticConfig
from repro.cluster.jobs import JobStatus
from repro.faults import FaultPlan, MessageDrop
from repro.sim.netmodel import NodeAddress, TrafficClass

from tests.chaos.conftest import DEFAULT_SEED, make_harness

pytestmark = pytest.mark.chaos

SUCCEEDED = JobStatus.SUCCEEDED


def _elastic_harness(seed):
    harness = make_harness(
        seed,
        enable_elastic=True,
        elastic=ElasticConfig(
            rebalance_period_s=30.0,
            autoscale=False,  # proposals only add noise to these scenarios
            drain_poll_s=2.0,
        ),
    )
    monitor = harness.monitor
    cluster = harness.cluster
    monitor.expect_replication(cluster.storage_b)
    monitor.expect_no_departed(cluster.storage_a, lambda: cluster.elastic.departed)
    monitor.expect_no_departed(cluster.storage_b, lambda: cluster.elastic.departed)
    return harness


def test_kill_mid_migration_is_retried_not_double_counted(seed):
    """Kill every migration transfer for 60s: publish-after-write means a
    dead copy publishes nothing — the placement is exactly what it was,
    the floor holds, answers stay exact — and the post-window retry moves
    the block once (or adopts a published half), never twice."""
    harness = _elastic_harness(seed)
    cluster = harness.cluster
    reb = cluster.elastic.rebalancer
    storage = cluster.storage_a

    # T was written from dc0/rack1/node1: every block's first replica sits
    # there, so that node is byte-heavy and the balance planner has a
    # guaranteed migration to attempt inside the window.
    heavy = NodeAddress(0, 1, 1)
    assert storage.bytes_on(heavy) > 0
    harness.install(
        FaultPlan().add(
            MessageDrop(probability=1.0, cls=TrafficClass.WRITE, at=0.0, duration=60.0)
        )
    )

    job = harness.run(harness.Q_GROUP)
    assert job.status is SUCCEEDED, job.error
    placement_before = {
        p: sorted(map(str, storage.locations(p))) for p in storage.list_paths()
    }

    # Force a cycle inside the window: every spread/migration transfer
    # dies mid-flight and must leave no trace in the placement.
    harness.sim.run_until_complete(harness.sim.process(reb.run_once()))
    assert harness.sim.now < 60.0
    placement_during = {
        p: sorted(map(str, storage.locations(p))) for p in storage.list_paths()
    }
    assert placement_during == placement_before  # nothing half-moved
    if seed == DEFAULT_SEED:
        assert reb.stats.failed_migrations >= 1  # the window did bite
        assert reb.stats.migrations == 0 and reb.stats.spreads == 0
    during = harness.run(harness.Q_COUNT)
    assert during.status is SUCCEEDED, during.error

    # Fabric heals at t=60: the retry finishes the interrupted moves.
    harness.sim.run(until=65.0)
    harness.sim.run_until_complete(harness.sim.process(reb.run_once()))
    if seed == DEFAULT_SEED:
        assert reb.stats.migrations + reb.stats.adopted_migrations >= 1
    for path in storage.list_paths():
        locs = storage.locations(path)
        assert len(locs) >= storage.replication
        assert len(set(locs)) == len(locs)  # no double-counted holder
    after = harness.run(harness.Q_GROUP)
    assert after.status is SUCCEEDED, after.error
    harness.finish("kill_mid_migration")


def test_kill_mid_drain_blocks_departure_until_evacuated(seed):
    """Start a decommission inside the drop window: every evacuation copy
    dies mid-flight, so the drain must *wait* — the node stays registered
    and keeps its replicas (leaving early would strand blocks below the
    floor) — and once the fabric heals the retries evacuate everything
    and the departure completes with nothing left behind."""
    harness = _elastic_harness(seed)
    cluster = harness.cluster
    victim = cluster.leaf_at(NodeAddress(0, 1, 1))  # holds a T replica set
    harness.install(
        FaultPlan().add(
            MessageDrop(probability=1.0, cls=TrafficClass.WRITE, at=0.0, duration=60.0)
        )
    )

    job = harness.run(harness.Q_JOIN)
    assert job.status is SUCCEEDED, job.error
    done = cluster.decommission(victim.worker_id)

    # Deep inside the window the drain is alive but going nowhere: the
    # worker is draining (no new placements), still registered, and every
    # replica it holds is still exactly where it was.
    harness.sim.run(until=55.0)
    assert not done.triggered
    assert cluster.cluster_manager.is_draining(victim.worker_id)
    assert cluster.cluster_manager.is_alive(victim.worker_id)
    assert cluster.storage_a.held_paths(victim.address)
    if seed == DEFAULT_SEED:
        assert cluster.elastic.rebalancer.stats.failed_migrations >= 1
    during = harness.run(harness.Q_COUNT)
    assert during.status is SUCCEEDED, during.error

    # Fabric heals: the poll loop's retries drain the node dry and the
    # departure completes.
    harness.sim.run_until_complete(done, limit=harness.sim.now + 600.0)
    assert victim.retired
    assert cluster.elastic.departed == [victim.address]
    for system in cluster.router.systems():
        assert victim.address not in system.nodes()
    with pytest.raises(Exception):
        cluster.cluster_manager.is_alive(victim.worker_id)
    after = harness.run(harness.Q_GROUP)
    assert after.status is SUCCEEDED, after.error
    # finish() runs the full invariant sweep: replication floor, no
    # double-counted holder, and — via expect_no_departed — no placement
    # still referencing the departed node.
    harness.finish("kill_mid_drain")
