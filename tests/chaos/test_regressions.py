"""Pinned regressions: cluster-state bugs the chaos matrix surfaced.

Each test reconstructs the exact fault timing that exposed a real bug in
the cluster code, and asserts the fixed behaviour.  Keep these green —
they are the proof that the fix stays fixed.

1. **Corpse resurrection** (``node.py`` heartbeat loops): a heartbeat
   *already in flight* when its worker crashed used to land later and
   re-admit the dead worker to the schedulable set.  The loops now
   re-check ``self.alive`` after the send completes.
2. **Reused-task failure coupling** (``master.py`` job admission): a job
   piggybacking on an identical in-flight task inherited that task's
   *failure* permanently — it burned another job's attempt budget and
   failed without ever trying itself.  Reused tasks now fall back to a
   supervisor of their own on failure.
"""

import pytest

from repro.cluster.jobs import JobOptions, JobStatus
from repro.faults import CrashWindow, FaultPlan, MessageDelay, MessageDrop
from repro.sim.netmodel import TrafficClass

pytestmark = pytest.mark.chaos


def test_delayed_heartbeat_from_crashed_worker_stays_dead(harness, seed):
    """Corpse resurrection, step by step: the victim's t=5 heartbeat is
    held in the fabric for 25s; the victim crashes at t=6; the sweep
    declares it dead at t=20; the stale beat lands at ~t=30.  A dead
    process must NOT be re-admitted by its own ghost."""
    victim = "leaf-dc0/rack1/node3"
    harness.install(
        FaultPlan().add(
            MessageDelay(
                extra_s=25.0,
                cls=TrafficClass.CONTROL,
                src=harness.leaf(victim).address,
                at=4.0,
                duration=2.0,
            ),
            CrashWindow(worker=victim, at=6.0),
        )
    )
    manager = harness.cluster.cluster_manager
    harness.sim.run(until=21.0)
    assert not harness.leaf(victim).alive
    assert not manager.is_alive(victim)  # swept dead at t=20
    harness.sim.run(until=35.0)  # the stale beat has landed by now
    assert harness.injector.delayed == 1  # ...and it really was in flight
    assert manager.readmissions == 0, "a stale heartbeat resurrected a corpse"
    assert not manager.is_alive(victim)
    # The cluster still answers correctly without the dead leaf.
    job = harness.run(harness.Q_GROUP)
    assert job.status is JobStatus.SUCCEEDED, job.error
    harness.finish("delayed_heartbeat_from_crashed_worker_stays_dead")


def test_piggybacked_job_survives_shared_task_failure(harness, seed):
    """Reused-task coupling, step by step: job A's dispatches all die in
    a 5.5s total-loss window and A exhausts its four attempts by ~t=4.
    Job B (same SQL, submitted at t=0.5) piggybacks on A's in-flight
    tasks.  When those tasks fail, B must launch its own attempts — which
    straddle the heal at t=5.5 and succeed — instead of inheriting A's
    death with zero attempts of its own."""
    harness.install(FaultPlan().add(MessageDrop(probability=1.0, at=0.0, duration=5.5)))
    options = JobOptions(enable_backup=False)
    job_a, done_a = harness.cluster.submit(harness.Q_COUNT, options=options)
    harness.sim.run(until=0.5)
    job_b, done_b = harness.cluster.submit(harness.Q_COUNT, options=options)
    harness.sim.run_until_complete(done_a, limit=harness.sim.now + 60.0)
    # The window outlives A's attempt budget.  (One task rides the exempt
    # node-local path to the master-co-located leaf, so A dies as a
    # partial-data timeout rather than a pure failure.)
    assert job_a.status in (JobStatus.FAILED, JobStatus.TIMED_OUT)
    assert job_a.error is not None
    harness.sim.run_until_complete(done_b, limit=harness.sim.now + 60.0)
    assert job_b.status is JobStatus.SUCCEEDED, (
        f"piggybacked job inherited the shared task's failure: {job_b.error}"
    )
    assert job_b.finished_at > 5.5  # B's own post-heal attempts did the work
    harness.monitor.check_job(job_a, sql=harness.Q_COUNT)
    harness.monitor.check_job(job_b, sql=harness.Q_COUNT)
    harness.finish("piggybacked_job_survives_shared_task_failure")
