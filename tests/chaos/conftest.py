"""Harness for the chaos matrix.

Every scenario gets a fresh small cluster (2 racks × 5 nodes, table T on
storage A, dimension D on storage B), a seeded
:class:`~repro.faults.injector.FaultInjector`, and an
:class:`~repro.faults.invariants.InvariantMonitor` wired to the shared
reference oracle.  The seed defaults to :data:`DEFAULT_SEED` and is
overridden with the ``CHAOS_SEED`` environment variable — exactly what a
failure report tells you to do to replay a scenario bit-for-bit.
"""

import os

import numpy as np
import pytest

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.faults import FaultPlan, InvariantMonitor
from repro.sim.netmodel import NodeAddress

from tests._oracle import oracle_for

#: Fixed seed for CI; override with CHAOS_SEED to replay a failure.
DEFAULT_SEED = 1234


def current_seed() -> int:
    return int(os.environ.get("CHAOS_SEED", DEFAULT_SEED))


@pytest.fixture()
def seed() -> int:
    return current_seed()


def build_cluster(
    nodes_per_rack: int = 5,
    n_rows: int = 5000,
    block_rows: int = 500,
    data_seed: int = 7,
    leaf=None,
    gateway=None,
    adaptive=None,
    scale_factor=None,
    enable_elastic=False,
    elastic=None,
):
    """A fresh wired cluster with known contents (fact T, dimension D)."""
    config = FeisuConfig(
        datacenters=1,
        racks_per_datacenter=2,
        nodes_per_rack=nodes_per_rack,
        gateway=gateway,
        adaptive=adaptive,
        enable_elastic=enable_elastic,
        elastic=elastic,
    )
    if leaf is not None:
        config.leaf = leaf
    cluster = FeisuCluster(config)
    rng = np.random.default_rng(data_seed)
    columns = {
        "c1": rng.integers(0, 100, n_rows),
        "c2": rng.integers(0, 10, n_rows),
        "clicks": rng.random(n_rows),
    }
    # Write T from a rack-1 node: two of each block's three replicas land
    # in rack 1 and one in rack 0, so rack partitions genuinely cut the
    # scheduler off from its preferred placements.
    cluster.load_table(
        "T",
        Schema.of(c1=DataType.INT64, c2=DataType.INT64, clicks=DataType.FLOAT64),
        columns,
        storage="storage-a",
        block_rows=block_rows,
        scale_factor=scale_factor,
        node=NodeAddress(0, 1, 1),
    )
    dim = {
        "c2": np.arange(10),
        "label": np.array([f"grp{i}" for i in range(10)], dtype=object),
        "weight": np.linspace(0.1, 1.0, 10),
    }
    cluster.load_table(
        "D",
        Schema.of(c2=DataType.INT64, label=DataType.STRING, weight=DataType.FLOAT64),
        dim,
        storage="storage-b",
        block_rows=100,
    )
    return cluster, columns, dim


class ChaosHarness:
    """One scenario's cluster + injector + monitor, seed-threaded."""

    #: Deterministic-output queries scenarios draw from.
    Q_GROUP = "SELECT c2 AS k, COUNT(*) AS n, SUM(c1) AS s FROM T GROUP BY k ORDER BY k"
    Q_COUNT = "SELECT COUNT(*) AS n FROM T WHERE c1 < 50"
    Q_JOIN = (
        "SELECT label AS g, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2 "
        "WHERE c1 < 70 GROUP BY g ORDER BY g"
    )

    def __init__(self, seed: int, **cluster_kwargs):
        self.seed = seed
        self.cluster, self.columns, self.dim = build_cluster(**cluster_kwargs)
        self.monitor = InvariantMonitor(
            self.cluster,
            horizon_s=600.0,
            oracle=oracle_for(self.columns, {"D": self.dim}),
        )
        self.monitor.expect_replication(self.cluster.storage_a)
        self.injector = None

    def install(self, plan: FaultPlan):
        self.injector = self.cluster.install_faults(plan, seed=self.seed)
        return self.injector

    @property
    def sim(self):
        return self.cluster.sim

    def leaf(self, worker_id: str):
        return next(l for l in self.cluster.leaves if l.worker_id == worker_id)

    def run(self, sql: str, options=None):
        """Run one query under the invariant monitor; returns the job."""
        return self.monitor.run_job(sql, options=options)

    def finish(self, scenario: str) -> None:
        """End-of-scenario invariant check; raises with seed + replay cmd."""
        self.monitor.assert_ok(seed=self.seed, scenario=scenario)


@pytest.fixture()
def harness(seed):
    return ChaosHarness(seed)


def make_harness(seed: int, **kwargs) -> ChaosHarness:
    """For scenarios needing a non-default cluster shape."""
    return ChaosHarness(seed, **kwargs)
