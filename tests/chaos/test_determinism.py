"""Replay determinism and the empty-plan zero-overhead gate.

Two guarantees make chaos findings actionable:

1. **Replay** — a plan plus a seed fully determines the run.  The same
   scenario executed twice produces the identical fault log, identical
   job outcomes, and the identical final simulated clock, so the
   ``CHAOS_SEED=<seed>`` command printed in a failure report really does
   reproduce the failure bit-for-bit.
2. **Zero overhead** — installing an *empty* :class:`FaultPlan` must not
   move the simulated world at all: same statuses, same response times,
   same task timelines, same final clock as a cluster that never
   imported :mod:`repro.faults`.  This is the same standard the tracing
   layer is held to (``pytest -m obs``), and it is what keeps the
   committed ``benchmarks/results/`` tables byte-identical with the
   fault layer merged.
"""

import dataclasses

import pytest

from repro.faults import (
    CrashWindow,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    ZombieWindow,
)

from tests.chaos.conftest import ChaosHarness, make_harness

pytestmark = pytest.mark.chaos


def _storm_plan() -> FaultPlan:
    """A plan touching every primitive family with RNG-driven policies."""
    return FaultPlan().add(
        MessageDrop(probability=0.12, at=0.0, duration=30.0),
        MessageDelay(extra_s=0.4, probability=0.25, at=0.0, duration=30.0),
        MessageDuplicate(probability=0.2, at=0.0, duration=30.0),
        CrashWindow(worker="leaf-dc0/rack0/node3", at=1.0, restart_after=8.0),
        ZombieWindow(worker="leaf-dc0/rack1/node2", at=2.0, duration=10.0),
    )


def _drive_storm(seed: int):
    harness = make_harness(seed)
    harness.install(_storm_plan())
    jobs = []
    for sql in (harness.Q_GROUP, harness.Q_COUNT, harness.Q_JOIN):
        jobs.append(harness.run(sql))
    harness.sim.run(until=30.0)
    outcomes = tuple(
        (
            job.status.value,
            job.stats.response_time_s,
            tuple(job.result.rows()) if job.result is not None else None,
        )
        for job in jobs
    )
    return harness.injector.log_fingerprint(), harness.sim.now, outcomes


def test_same_seed_replays_identical_event_sequence(seed):
    first = _drive_storm(seed)
    second = _drive_storm(seed)
    assert first[0] == second[0], "fault logs diverged between identical runs"
    assert first[1] == second[1], "final simulated clocks diverged"
    assert first[2] == second[2], "job outcomes diverged"


def test_different_seeds_draw_different_faults(seed):
    """Sanity check that the seed actually reaches the RNG: two storms
    under different seeds disagree somewhere in their fault logs."""
    a = _drive_storm(seed)
    b = _drive_storm(seed + 1)
    assert a[0] != b[0]


# -- zero-overhead gate ------------------------------------------------------


def _fingerprint(with_empty_plan: bool):
    """Simulated-outcome fingerprint of a fixed workload, in the same
    shape as the ``pytest -m obs`` overhead gate."""
    harness = ChaosHarness(seed=0)
    if with_empty_plan:
        harness.install(FaultPlan())
    outcomes = []
    for sql in (ChaosHarness.Q_GROUP, ChaosHarness.Q_COUNT, ChaosHarness.Q_JOIN):
        job = harness.cluster.query_job(sql)
        outcomes.append(
            (
                job.status.value,
                job.response_time_s,
                job.submitted_at,
                job.finished_at,
                dataclasses.astuple(job.stats),
                [
                    # Strip the process-global plan counter from the id:
                    # "plan-7/t3" -> "t3" (both runs share one process).
                    (t.task_id.split("/")[-1], t.worker_id, t.started_at, t.finished_at, t.backup)
                    for t in job.task_timeline
                ],
            )
        )
    harness.sim.run(until=12.0)  # through a heartbeat/sweep round
    outcomes.append(harness.sim.now)
    return outcomes


def test_empty_plan_is_zero_overhead():
    bare = _fingerprint(with_empty_plan=False)
    hooked = _fingerprint(with_empty_plan=True)
    assert bare == hooked, (
        "an empty FaultPlan changed simulated outcomes — interception must "
        "stay provably free when no faults are configured"
    )


def test_empty_plan_touches_no_randomness_and_logs_nothing():
    harness = ChaosHarness(seed=0)
    injector = harness.install(FaultPlan())
    state_before = injector.rng.bit_generator.state
    harness.cluster.query(ChaosHarness.Q_GROUP)
    harness.sim.run(until=12.0)
    assert injector.records == []
    assert injector.rng.bit_generator.state == state_before
    assert injector.dropped == injector.delayed == injector.duplicated == 0
