"""Unit coverage for the InvariantMonitor's violation and reporting paths.

The matrix scenarios prove the invariants *hold* under faults; these
tests prove the monitor actually *fires* when each invariant is broken,
and that a failure report carries everything needed to replay the run
(scenario name, seed, fault log, the exact ``CHAOS_SEED=...`` command).
"""

import pytest

from repro.cluster.jobs import JobStatus
from repro.errors import InvariantViolation
from repro.faults import FaultPlan

from tests.chaos.conftest import make_harness

pytestmark = pytest.mark.chaos


def test_replication_floor_breach_is_reported(harness, seed):
    storage = harness.cluster.storage_a
    path = next(iter(storage.list_paths()))
    victim = storage.locations(path)[0]
    storage.drop_replica(path, victim)
    with pytest.raises(InvariantViolation) as excinfo:
        harness.finish("replication_floor_breach_unit")
    message = str(excinfo.value)
    assert "replication" in message
    assert f"seed={seed}" in message
    assert "replay: CHAOS_SEED=" in message
    assert "replication_floor_breach_unit" in message


def test_failure_report_includes_fault_log(harness, seed):
    harness.install(FaultPlan())
    harness.monitor._violate("synthetic violation for report formatting")
    with pytest.raises(InvariantViolation) as excinfo:
        harness.finish("report_formatting_unit")
    message = str(excinfo.value)
    assert "synthetic violation" in message
    assert "fault log (seed=" in message  # injector.describe() is attached
    assert f"CHAOS_SEED={seed}" in message


def test_wrong_answer_is_a_safety_violation(harness):
    harness.monitor.oracle = lambda sql, result: "forced mismatch"
    job = harness.run(harness.Q_COUNT)
    assert job.status is JobStatus.SUCCEEDED
    assert any("safety" in v and "forced mismatch" in v for v in harness.monitor.violations)
    assert not harness.monitor.ok


def test_nonterminal_job_is_a_liveness_violation(harness):
    job, _done = harness.cluster.submit(harness.Q_COUNT)
    harness.monitor.check_job(job)  # checked before the simulator ran it
    assert any("liveness" in v and "non-terminal" in v for v in harness.monitor.violations)


def test_double_counted_tasks_are_an_accounting_violation(harness):
    job = harness.run(harness.Q_COUNT)
    assert job.status is JobStatus.SUCCEEDED
    job.stats.tasks_completed = job.stats.tasks_total + 1
    harness.monitor.check_job(job, sql=harness.Q_COUNT)
    assert any("double-counted" in v for v in harness.monitor.violations)


def test_horizon_exceeded_is_a_liveness_violation(seed):
    harness = make_harness(seed)
    harness.monitor.horizon_s = 1e-6  # no job can finish inside this
    job = harness.run(harness.Q_GROUP)
    assert job.status not in (JobStatus.SUCCEEDED,)
    assert any("horizon exceeded" in v for v in harness.monitor.violations)


def test_stale_heartbeat_readmission_of_corpse_is_flagged(harness):
    """Drive the public membership path: crash a leaf, let the sweep
    declare it dead, then land one stale heartbeat on its behalf."""
    victim = "leaf-dc0/rack1/node2"
    leaf = harness.leaf(victim)
    manager = harness.cluster.cluster_manager
    leaf.crash()
    harness.sim.run(until=21.0)
    assert not manager.is_alive(victim)
    manager.heartbeat(victim, leaf.load_snapshot())  # the ghost packet
    assert manager.readmissions == 1
    assert any("corpse resurrection" in v for v in harness.monitor.violations)
