"""Gateway chaos scenarios (S52): serving under crashes and stragglers.

The gateway sits upstream of everything the fault injector attacks, so
its invariants are about *bookkeeping under failure*: every admitted
query resolves exactly once, slots drain back to zero whatever mix of
successes, retries, kills and crashed leaves produced the resolutions,
and answers that do arrive are still exactly right (shared oracle).
"""

import pytest

from repro.cluster.jobs import JobStatus
from repro.faults import CrashWindow, FaultPlan, SlowNode
from repro.gateway import GatewayConfig, QueryStatus, TenantPolicy

from tests.chaos.conftest import DEFAULT_SEED, make_harness

pytestmark = pytest.mark.chaos

GATEWAY = GatewayConfig(
    total_slots=3,
    default_policy=TenantPolicy(max_concurrent=2, max_queued=128),
)


def gateway_harness(seed):
    harness = make_harness(seed, gateway=GATEWAY)
    for user in ("ads-svc", "search-svc"):
        harness.cluster.create_user(user, domains=["*"])
        harness.cluster.acl.grant(user, "T")
        harness.cluster.acl.grant(user, "D")
    return harness


def drain(harness, limit_s=600.0):
    gateway = harness.cluster.gateway
    sim = harness.sim
    deadline = sim.now + limit_s
    while gateway.in_flight() > 0:
        assert sim.step(), "deadlock draining the gateway under faults"
        assert sim.now <= deadline, "gateway did not drain within the horizon"


def check_resolved(harness, handles):
    """Every admitted handle resolved exactly once; correct answers only."""
    monitor = harness.monitor
    for handle in handles:
        assert handle.terminal, handle
        assert handle.done.triggered
        if handle.job is not None and handle.job.status in (
            JobStatus.SUCCEEDED,
            JobStatus.FAILED,
            JobStatus.TIMED_OUT,
        ):
            monitor.check_job(handle.job, sql=handle.sql)
    assert harness.cluster.gateway.admission.running == 0
    assert harness.cluster.gateway.admission.memory_in_use == pytest.approx(0.0)


def test_gateway_serves_through_crash_and_straggler(seed):
    """A leaf crash plus a 10x straggler mid-burst: admitted queries all
    resolve, completed answers match the oracle, and the slot pool is
    clean afterwards."""
    harness = gateway_harness(seed)
    harness.install(
        FaultPlan().add(
            CrashWindow(worker="leaf-dc0/rack1/node1", at=0.001, restart_after=2.0),
            SlowNode(worker="leaf-dc0/rack0/node2", at=0.0, duration=5.0, factor=10.0),
        )
    )
    gateway = harness.cluster.gateway
    ads = gateway.open_session("ads-svc", tenant="ads")
    search = gateway.open_session("search-svc", tenant="search")
    handles = []
    for _ in range(4):
        handles.append(ads.submit(harness.Q_COUNT))
        handles.append(search.submit(harness.Q_GROUP))
    handles.append(ads.submit(harness.Q_JOIN))
    drain(harness)
    check_resolved(harness, handles)
    if seed == DEFAULT_SEED:
        # Failure-handling (retries/backups) rescues the whole batch.
        assert all(h.status is QueryStatus.SUCCEEDED for h in handles)
    harness.finish("gateway_crash_and_straggler")


def test_killed_session_releases_slots_under_faults(seed):
    """Killing a session mid-crash-window must release its slots: the
    surviving tenant's backlog completes and the books return to zero."""
    harness = gateway_harness(seed)
    harness.install(
        FaultPlan().add(
            CrashWindow(worker="leaf-dc0/rack1/node2", at=0.001, restart_after=1.5),
        )
    )
    gateway = harness.cluster.gateway
    ads = gateway.open_session("ads-svc", tenant="ads")
    search = gateway.open_session("search-svc", tenant="search")
    doomed = [ads.submit(harness.Q_GROUP) for _ in range(5)]
    survivors = [search.submit(harness.Q_COUNT) for _ in range(5)]
    # Let the first emissions start, then tear the ads session down.
    for _ in range(3):
        harness.sim.step()
    killed = ads.kill()
    assert killed >= 1
    drain(harness)
    check_resolved(harness, doomed + survivors)
    assert all(h.status is QueryStatus.KILLED for h in doomed)
    if seed == DEFAULT_SEED:
        assert all(h.status is QueryStatus.SUCCEEDED for h in survivors)
    tq = gateway.admission.tenant("ads")
    assert tq.killed == len(doomed)
    harness.finish("gateway_killed_session_under_faults")
