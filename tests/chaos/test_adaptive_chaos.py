"""Chaos scenarios for the adaptive re-optimizer (S53).

Three seeded fault scenarios drive the pilot-wave / checkpoint /
remainder-wave machinery through its failure windows:

1. a worker crash *spanning the re-plan decision point* — retained pilot
   output at the master must survive the crash and no pilot partition
   may re-run;
2. a permanent crash of a worker holding retained stage output while it
   executes remainder tasks — recovery must be *partition-level* (only
   the lost in-flight partitions re-run, proven by attempt counts with
   backups disabled), never a full relaunch;
3. a SlowNode straggler during the pilot wave — duration skew at the
   checkpoint must trigger a skew-split of the remainder.

Timing windows come from a fault-free *probe twin* run first under the
same seed: the simulation is deterministic, so the probe's task timeline
tells us exactly when the pilot wave ends and which workers hold what.
Invariant assertions hold for any seed; exact outcome pins are guarded
by ``seed == DEFAULT_SEED``; every scenario replays bit-for-bit via
``CHAOS_SEED=<seed>``.
"""

import pytest

from repro.cluster.jobs import JobOptions, JobStatus
from repro.faults import CrashWindow, FaultPlan, SlowNode
from repro.planner.adaptive import AdaptiveConfig

from tests.chaos.conftest import DEFAULT_SEED, make_harness

pytestmark = pytest.mark.chaos

#: Chaos blocks are small (500 rows; pilot slices 256), so the split
#: floor must come down for a skew-split to produce sub-tasks at all.
ADAPTIVE = AdaptiveConfig(min_split_rows=64)

#: Modeled-bytes multiplier for the fact table: with the default factor
#: of 1 every pilot slice is dispatch-latency-bound and a slowed device
#: is invisible; at 500x device time dominates, so SlowNode stragglers
#: actually show up in the pilot durations the checkpoint inspects.
SCALE_FACTOR = 500


def _adaptive_harness(seed: int):
    return make_harness(seed, adaptive=ADAPTIVE, scale_factor=SCALE_FACTOR)


def _pilot_entries(job):
    return [t for t in job.task_timeline if t.task_id.endswith(".p")]


def _wave2_entries(job):
    return [t for t in job.task_timeline if not t.task_id.endswith(".p")]


def _assert_no_pilot_reruns(job):
    """Partition-level recovery: every completed pilot partition ran
    exactly once — its retained output at the master survived the fault."""
    pilot = _pilot_entries(job)
    pilot_ids = [t.task_id for t in pilot]
    assert len(pilot_ids) == len(set(pilot_ids)), "a completed pilot partition re-ran"


def test_crash_spanning_replan_decision(seed):
    """A worker dies just before the checkpoint and returns after it:
    the decision sees fewer live workers, the dead worker's retained
    pilot output is still used, and no pilot partition re-runs."""
    probe = _adaptive_harness(seed)
    probe_job = probe.run(probe.Q_GROUP)
    assert probe_job.status is JobStatus.SUCCEEDED, probe_job.error
    pilot = _pilot_entries(probe_job)
    assert pilot, "adaptive pilot wave did not run"
    pilot_end = max(t.finished_at for t in pilot)
    first_done = min(pilot, key=lambda t: t.finished_at)
    victim = first_done.worker_id
    # Crash after the victim's own pilot partition completed, in a window
    # that straddles the decision point at ~pilot_end.
    crash_at = (first_done.finished_at + pilot_end) / 2.0

    harness = _adaptive_harness(seed)
    harness.install(
        FaultPlan().add(CrashWindow(worker=victim, at=crash_at, restart_after=3.0))
    )
    job = harness.run(harness.Q_GROUP)
    assert job.status is JobStatus.SUCCEEDED, job.error
    assert job.stats.adaptive_waves == 2
    _assert_no_pilot_reruns(job)
    if seed == DEFAULT_SEED:
        assert len(_pilot_entries(job)) == 10  # one pilot slice per block
        assert [r.kind for r in harness.injector.records][:1] == ["crash"]
    harness.finish("adaptive_crash_spanning_replan_decision")


def test_crash_spanning_replan_decision_replays_exactly(seed):
    """The same seed must reproduce the identical event sequence: two
    independent runs of the scenario agree on every task attempt."""
    timelines = []
    rows = []
    for _ in range(2):
        probe = _adaptive_harness(seed)
        probe_job = probe.run(probe.Q_GROUP)
        pilot = _pilot_entries(probe_job)
        pilot_end = max(t.finished_at for t in pilot)
        first_done = min(pilot, key=lambda t: t.finished_at)
        harness = _adaptive_harness(seed)
        harness.install(
            FaultPlan().add(
                CrashWindow(
                    worker=first_done.worker_id,
                    at=(first_done.finished_at + pilot_end) / 2.0,
                    restart_after=3.0,
                )
            )
        )
        job = harness.run(harness.Q_GROUP)
        assert job.status is JobStatus.SUCCEEDED, job.error
        # Plan ids are process-global counters; strip them so the two
        # runs compare structurally.
        timelines.append(
            [
                (t.task_id.split("/", 1)[-1], t.worker_id, t.started_at, t.finished_at)
                for t in job.task_timeline
            ]
        )
        rows.append(job.result.rows())
    assert timelines[0] == timelines[1]
    assert rows[0] == rows[1]


def test_crash_of_retained_output_holder_rerunss_only_lost_partitions(seed):
    """A worker that completed pilot partitions dies for good while
    running remainder tasks.  With backups off, attempt counts prove the
    recovery is partition-level: completed partitions (pilot and wave-2)
    are never re-run; only the victim's in-flight partitions retry on
    survivors, counted by ``adaptive_partitions_recovered``."""
    options = JobOptions(enable_backup=False)
    probe = _adaptive_harness(seed)
    probe_job = probe.run(probe.Q_GROUP, options=options)
    assert probe_job.status is JobStatus.SUCCEEDED, probe_job.error
    pilot_workers = {t.worker_id for t in _pilot_entries(probe_job)}
    wave2 = _wave2_entries(probe_job)
    assert wave2, "no remainder wave in probe run"
    by_worker = {}
    for t in wave2:
        if t.worker_id in pilot_workers:
            by_worker.setdefault(t.worker_id, []).append(t)
    assert by_worker, "no worker holds both pilot output and wave-2 tasks"
    # The victim holds retained pilot output AND the most wave-2 work.
    victim = max(by_worker, key=lambda w: (len(by_worker[w]), w))
    first = min(t.started_at for t in by_worker[victim])
    last = max(t.finished_at for t in by_worker[victim])
    crash_at = (first + last) / 2.0  # mid-flight: some done, some running

    harness = _adaptive_harness(seed)
    harness.install(FaultPlan().add(CrashWindow(worker=victim, at=crash_at)))
    job = harness.run(harness.Q_GROUP, options=options)
    assert job.status is JobStatus.SUCCEEDED, job.error
    assert job.stats.adaptive_waves == 2
    # With the watchdog off, every extra attempt is a crash-recovery
    # retry of a lost partition — not a speculative backup.
    assert job.stats.backups_launched == job.stats.adaptive_partitions_recovered
    _assert_no_pilot_reruns(job)
    # Every scheduled partition reported exactly one completed attempt —
    # a full relaunch would duplicate task ids in the timeline.
    attempt_ids = [t.task_id for t in job.task_timeline]
    assert len(attempt_ids) == len(set(attempt_ids))
    assert len(attempt_ids) == job.stats.tasks_total
    if seed == DEFAULT_SEED:
        assert job.stats.adaptive_partitions_recovered >= 1
        # Only the victim's lost in-flight partitions retried, bounded by
        # the work it was assigned in the fault-free twin.
        assert job.stats.adaptive_partitions_recovered <= len(by_worker[victim])
    harness.finish("adaptive_crash_retained_output_holder")


def test_slow_node_triggers_skew_split(seed):
    """A consolidated-container straggler slows one pilot partition by
    12x: the checkpoint's duration-skew detector must split the remainder
    across survivors instead of letting the straggler gate the query."""
    probe = _adaptive_harness(seed)
    probe_job = probe.run(probe.Q_GROUP)
    straggler = _pilot_entries(probe_job)[0].worker_id
    clean_splits = probe_job.stats.adaptive_splits

    harness = _adaptive_harness(seed)
    harness.install(
        FaultPlan().add(SlowNode(worker=straggler, at=0.0, duration=600.0, factor=12.0))
    )
    job = harness.run(harness.Q_GROUP)
    assert job.status is JobStatus.SUCCEEDED, job.error
    assert job.stats.adaptive_waves == 2
    if seed == DEFAULT_SEED:
        assert clean_splits == 0  # uniform data: no split without the fault
        assert job.stats.adaptive_splits > 0
        assert job.stats.adaptive_replans >= 1
    harness.finish("adaptive_slow_node_skew_split")
