"""The differential chaos matrix: ~12 named failure scenarios.

Each scenario composes fault primitives into a :class:`FaultPlan`, drives
real queries through the cluster under the always-on
:class:`InvariantMonitor`, and pins the expected *recovery* behaviour
(backups rescuing stragglers, retries escaping partitions, re-admission
after false death, failover after master loss).  Every scenario is fully
determined by one seed; a failing run's report prints that seed and the
``CHAOS_SEED=<seed>`` command that replays the identical event sequence.

Assertions come in two strengths:

* **invariants** (via ``harness.finish``) hold for *any* seed;
* **outcome pins** (exact success counts for RNG-dependent plans) are
  guarded by ``seed == DEFAULT_SEED`` so a replay under a different seed
  still checks the invariants without asserting seed-specific outcomes.
"""

import numpy as np
import pytest

from repro import DataType, Schema
from repro.cluster.jobs import JobOptions, JobStatus
from repro.faults import (
    CrashWindow,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    RackPartition,
    SlowNode,
    StorageStall,
    ZombieWindow,
)
from repro.sim.netmodel import TrafficClass

from tests._oracle import oracle_for
from tests.chaos.conftest import DEFAULT_SEED, make_harness

pytestmark = pytest.mark.chaos

SUCCEEDED = JobStatus.SUCCEEDED
TERMINAL = (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.TIMED_OUT)


# -- network scenarios -------------------------------------------------------


def test_partition_during_shuffle(harness, seed):
    """Every replica of T is stranded in rack 1 and rack 1 is cut off at
    submit time: dispatch after dispatch times out across the partition
    until the window closes, then a retry attempt lands and the join
    still answers exactly."""
    storage = harness.cluster.storage_a
    for path in storage.list_paths():
        for addr in list(storage.locations(path)):
            if addr.rack == 0:
                storage.drop_replica(path, addr)
    harness.monitor.expect_replication(storage, floor=2)  # we dropped to 2
    harness.install(
        FaultPlan().add(RackPartition(racks=((0, 1),), at=0.0, duration=2.0))
    )
    job = harness.run(harness.Q_JOIN)
    assert job.status is SUCCEEDED, job.error
    assert job.stats.response_time_s >= 2.0  # it really waited out the window
    assert harness.injector.dropped > 0
    # After the heal the rack serves directly again.
    assert harness.run(harness.Q_GROUP).status is SUCCEEDED
    harness.finish("partition_during_shuffle")


def test_rack_partition_heal(harness, seed):
    """A short ToR outage must not get anyone declared dead: only one
    heartbeat round is lost, well under the miss limit."""
    harness.install(
        FaultPlan().add(RackPartition(racks=((0, 1),), at=0.05, duration=6.0))
    )
    first = harness.run(harness.Q_COUNT)
    assert first.status in TERMINAL
    harness.sim.run(until=12.0)  # crosses the t=5 heartbeat round
    assert harness.run(harness.Q_GROUP).status is SUCCEEDED
    assert harness.injector.dropped > 0  # rack 1's t=5 beats died here
    assert harness.cluster.cluster_manager.readmissions == 0
    harness.finish("rack_partition_heal")


def test_message_drop_storm(harness, seed):
    """Lossy fabric: every message class sees 12% loss for 40s; retries
    and backups must keep answers flowing, and never wrong."""
    harness.install(FaultPlan().add(MessageDrop(probability=0.12, at=0.0, duration=40.0)))
    statuses = []
    for sql in (harness.Q_COUNT, harness.Q_GROUP, harness.Q_JOIN):
        statuses.append(harness.run(sql).status)
    assert all(s in TERMINAL for s in statuses)
    if seed == DEFAULT_SEED:
        assert harness.injector.dropped > 0
        assert statuses.count(SUCCEEDED) >= 2, statuses
    harness.finish("message_drop_storm")


def test_duplicate_message_storm(harness, seed):
    """60% of messages delivered twice: link pressure rises but the
    at-most-once accounting invariant (no double-counted tasks) holds."""
    harness.install(FaultPlan().add(MessageDuplicate(probability=0.6, at=0.0, duration=30.0)))
    for sql in (harness.Q_GROUP, harness.Q_JOIN):
        job = harness.run(sql)
        assert job.status is SUCCEEDED, job.error
        assert job.stats.tasks_completed <= job.stats.tasks_total
    if seed == DEFAULT_SEED:
        assert harness.injector.duplicated > 0
    harness.finish("duplicate_message_storm")


def test_delayed_heartbeats_false_death(harness, seed):
    """Control-plane congestion delays every heartbeat past the sweep
    deadline: the whole membership is falsely declared dead, then the
    stale beats land and every worker is re-admitted — no corpses, and
    the cluster computes correctly again afterwards."""
    harness.install(
        FaultPlan().add(
            MessageDelay(extra_s=20.0, cls=TrafficClass.CONTROL, at=0.0, duration=22.0)
        )
    )
    manager = harness.cluster.cluster_manager
    harness.sim.run(until=21.0)
    # Everyone is falsely dead except the leaf co-located with the master
    # (node-local heartbeats never touch the fabric).
    assert sum(manager.is_alive(w.worker_id) for w in harness.cluster.leaves) == 1
    during = harness.run(harness.Q_COUNT)  # the one local leaf carries it
    assert during.status is SUCCEEDED, during.error
    harness.sim.run(until=45.0)
    # one re-admission per worker minus the two exempt co-located ones
    expected = len(harness.cluster.leaves) + len(harness.cluster.stems) - 2
    assert manager.readmissions == expected
    after = harness.run(harness.Q_GROUP)
    assert after.status is SUCCEEDED, after.error
    harness.finish("delayed_heartbeats_false_death")


def test_clock_skew_stragglers(harness, seed):
    """Two skewed nodes run slow *and* report late (device slowdown plus
    a 1s delay on everything they send); answers stay exact."""
    skewed = ("leaf-dc0/rack0/node2", "leaf-dc0/rack0/node4")
    plan = FaultPlan()
    for worker in skewed:
        plan.add(SlowNode(worker=worker, at=0.0, duration=30.0, factor=40.0))
        plan.add(
            MessageDelay(
                extra_s=1.0,
                src=harness.leaf(worker).address,
                at=0.0,
                duration=30.0,
            )
        )
    harness.install(plan)
    for sql in (harness.Q_GROUP, harness.Q_COUNT):
        job = harness.run(sql)
        assert job.status is SUCCEEDED, job.error
    assert harness.injector.delayed > 0
    harness.finish("clock_skew_stragglers")


# -- membership scenarios ----------------------------------------------------


def test_crash_during_index_build(harness, seed):
    """A leaf dies 20ms into the first (index-building) scan and comes
    back later; retries finish the job and the rebuilt leaf serves the
    re-run identically."""
    victim = "leaf-dc0/rack0/node1"
    harness.install(FaultPlan().add(CrashWindow(worker=victim, at=0.02, restart_after=5.0)))
    first = harness.run(harness.Q_GROUP)
    assert first.status is SUCCEEDED, first.error
    harness.sim.run(until=8.0)  # past the restart
    assert harness.leaf(victim).alive
    again = harness.run(harness.Q_GROUP)
    assert again.status is SUCCEEDED
    kinds = [r.kind for r in harness.injector.records]
    assert "crash" in kinds and "restart" in kinds
    harness.finish("crash_during_index_build")


def test_crash_restart_churn(harness, seed):
    """Rolling crash/restart churn under a query stream: every job
    terminal, successes exact, and the fully-healed cluster agrees."""
    harness.install(
        FaultPlan().add(
            CrashWindow(worker="leaf-dc0/rack0/node1", at=1.0, restart_after=6.0),
            CrashWindow(worker="leaf-dc0/rack1/node2", at=3.0, restart_after=6.0),
            CrashWindow(worker="leaf-dc0/rack0/node3", at=5.0, restart_after=6.0),
        )
    )
    ok = 0
    for i in range(6):
        job = harness.run(harness.Q_COUNT if i % 2 else harness.Q_GROUP)
        assert job.status in TERMINAL
        ok += job.status is SUCCEEDED
        harness.sim.run(until=harness.sim.now + 2.0)
    assert ok >= 4, f"only {ok}/6 queries survived the churn"
    harness.sim.run(until=30.0)  # all restarts done
    assert all(leaf.alive for leaf in harness.cluster.leaves)
    assert harness.run("SELECT COUNT(*) AS n FROM T").status is SUCCEEDED
    harness.finish("crash_restart_churn")


def test_zombie_readmission_storm(harness, seed):
    """Three leaves keep working but lose every heartbeat for 21s: the
    sweep declares them dead, their next beat re-admits them, and since
    their processes never died the re-admissions are *legitimate* (the
    corpse-resurrection invariant stays green)."""
    zombies = (
        "leaf-dc0/rack0/node2",
        "leaf-dc0/rack1/node1",
        "leaf-dc0/rack1/node4",
    )
    plan = FaultPlan()
    for worker in zombies:
        plan.add(ZombieWindow(worker=worker, at=2.0, duration=21.0))
    harness.install(plan)
    job = harness.run(harness.Q_GROUP)
    assert job.status is SUCCEEDED, job.error
    manager = harness.cluster.cluster_manager
    harness.sim.run(until=22.0)  # sweep at t=20 declares the zombies dead
    assert sum(not manager.is_alive(w) for w in zombies) == len(zombies)
    harness.sim.run(until=32.0)  # beats resume after the window
    assert manager.readmissions >= len(zombies)
    after = harness.run(harness.Q_GROUP)
    assert after.status is SUCCEEDED, after.error
    harness.finish("zombie_readmission_storm")


def test_master_failover_under_load(harness, seed):
    """The primary master dies mid-query on a slightly lossy fabric: the
    in-flight job fails over to the client, the promoted master answers
    the resubmission exactly."""
    harness.install(
        FaultPlan().add(MessageDelay(extra_s=0.2, probability=0.3, at=0.0, duration=10.0))
    )
    job, done = harness.cluster.submit(harness.Q_GROUP)
    harness.sim.run(until=0.05)
    aborted = harness.cluster.fail_master()
    assert aborted >= 1
    harness.sim.run_until_complete(done)
    assert job.status is JobStatus.FAILED
    assert job.error is not None  # "resubmit the query"
    harness.monitor.check_job(job, sql=harness.Q_GROUP)
    retry = harness.run(harness.Q_GROUP)
    assert retry.status is SUCCEEDED, retry.error
    harness.finish("master_failover_under_load")


# -- storage scenarios -------------------------------------------------------


def test_cold_storage_stall_with_backups(seed):
    """Archival reads hit a 2.5s first-byte wall; speculative backups
    launch at the straggler deadline and the answer is still exact."""
    harness = make_harness(seed)
    rng = np.random.default_rng(11)
    n = 2000
    cold = {"f1": rng.integers(0, 50, n), "f2": rng.integers(0, 8, n)}
    harness.cluster.load_table(
        "F",
        Schema.of(f1=DataType.INT64, f2=DataType.INT64),
        cold,
        storage="fatman",
        block_rows=250,
    )
    t_oracle = harness.monitor.oracle
    f_oracle = oracle_for(cold)
    harness.monitor.oracle = lambda sql, result: (
        f_oracle(sql, result) if " FROM F" in sql else t_oracle(sql, result)
    )
    harness.install(
        FaultPlan().add(
            StorageStall(system="fatman", at=0.0, duration=30.0, extra_first_byte_s=2.5)
        )
    )
    job = harness.run(
        "SELECT f2 AS k, COUNT(*) AS n FROM F GROUP BY k ORDER BY k",
        options=JobOptions(enable_backup=True),
    )
    assert job.status is SUCCEEDED, job.error
    assert job.stats.backups_launched >= 1
    assert any(r.kind == "storage_stall" for r in harness.injector.records)
    harness.finish("cold_storage_stall_with_backups")


def test_slow_disk_straggler(seed):
    """One leaf's devices degrade 10000x mid-run; the straggler deadline
    fires, a backup on a healthy replica holder wins the race."""
    harness = make_harness(seed, n_rows=40_000, block_rows=4_000)
    # node4 takes the most tasks under pressure-tie placement; slow only
    # it so its backups land on healthy leaves.
    harness.install(
        FaultPlan().add(
            SlowNode(worker="leaf-dc0/rack0/node4", at=0.0, duration=60.0, factor=10_000.0)
        )
    )
    job = harness.run(harness.Q_GROUP)
    assert job.status is SUCCEEDED, job.error
    assert job.stats.backups_launched >= 1
    harness.finish("slow_disk_straggler")


def test_crash_mid_promotion_keeps_replica_books_exact(seed):
    """Tiering promotions die mid-transfer (WRITE drops + a reader crash)
    and must retry idempotently: the cold tier never loses a replica, the
    hot tier never double-counts one, and answers stay exact throughout."""
    from repro.cluster.node import LeafConfig

    harness = make_harness(
        seed, leaf=LeafConfig(enable_smartindex=False, enable_tiering=True)
    )
    daemon = harness.cluster.tiering
    daemon.period_s = 15.0
    daemon.promote_threshold = 2.0
    rng = np.random.default_rng(11)
    n = 2000
    cold = {"f1": rng.integers(0, 50, n), "f2": rng.integers(0, 8, n)}
    harness.cluster.load_table(
        "F",
        Schema.of(f1=DataType.INT64, f2=DataType.INT64),
        cold,
        storage="fatman",
        block_rows=500,
    )
    t_oracle = harness.monitor.oracle
    f_oracle = oracle_for(cold)
    harness.monitor.oracle = lambda sql, result: (
        f_oracle(sql, result) if " FROM F" in sql else t_oracle(sql, result)
    )
    # Both tiers under the replication-floor invariant: promotion is a
    # copy, so fatman must stay at 2 and every published hot copy at 3.
    harness.monitor.expect_replication(harness.cluster.fatman)
    # Pin block 0's dominant reader to a leaf that holds *no* fatman
    # replica of it: the promotion copy must then cross the fabric, where
    # the WRITE drop window kills it mid-transfer.  (Scheduler-local scans
    # read from their own disk, which no message fault can touch.)
    fatman = harness.cluster.fatman
    b0 = harness.cluster.catalog.get("F").blocks[0]
    _, b0_inner = harness.cluster.router.resolve(b0.path)
    holders = set(fatman.locations(b0_inner))
    crash_addr = harness.leaf("leaf-dc0/rack0/node1").address
    remote = next(
        leaf.address
        for leaf in harness.cluster.leaves
        if leaf.address not in holders and leaf.address != crash_addr
    )
    for _ in range(10):
        daemon.record_access(b0.path, b0.encoded_bytes, reader=remote, now=0.0)
    # Drops cover every daemon cycle until t=60 (cycles at 15/30/45), so
    # the in-flight copy dies repeatedly and must retry; a frequent-reader
    # leaf also crashes inside the window.
    harness.install(
        FaultPlan()
        .add(MessageDrop(probability=1.0, cls=TrafficClass.WRITE, at=0.0, duration=60.0))
        .add(CrashWindow(worker="leaf-dc0/rack0/node1", at=25.0, restart_after=30.0))
    )
    sql = "SELECT f2 AS k, COUNT(*) AS n FROM F GROUP BY k ORDER BY k"
    for _ in range(6):
        job = harness.run(sql)
        assert job.status is SUCCEEDED, job.error
        harness.sim.run(until=harness.sim.now + 20.0)  # let the daemon cycle
    assert daemon.stats.promotions >= 1  # retries eventually landed
    assert b0.path in daemon.promoted_paths()  # the remote-reader block too
    for cold_full, hot_full in daemon.promoted_paths().items():
        c_sys, c_inner = harness.cluster.router.resolve(cold_full)
        h_sys, h_inner = harness.cluster.router.resolve(hot_full)
        assert len(c_sys.locations(c_inner)) >= c_sys.replication
        hot_holders = h_sys.locations(h_inner)
        assert len(hot_holders) >= h_sys.replication
        assert len(set(hot_holders)) == len(hot_holders)
    if seed == DEFAULT_SEED:
        assert daemon.stats.failed_promotions >= 1  # the window did bite
    harness.finish("crash_mid_promotion")
