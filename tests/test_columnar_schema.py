"""Unit tests for the schema/type system."""

import numpy as np
import pytest

from repro.columnar.schema import (
    DataType,
    Field,
    Schema,
    coerce_array,
    common_type,
    empty_columns,
)
from repro.errors import AnalysisError


def test_datatype_numpy_mapping():
    assert DataType.INT64.numpy_dtype == np.int64
    assert DataType.FLOAT64.numpy_dtype == np.float64
    assert DataType.BOOL.numpy_dtype == np.bool_
    assert DataType.STRING.numpy_dtype == object


def test_from_value_inference():
    assert DataType.from_value(True) is DataType.BOOL  # bool before int!
    assert DataType.from_value(3) is DataType.INT64
    assert DataType.from_value(3.5) is DataType.FLOAT64
    assert DataType.from_value("x") is DataType.STRING
    with pytest.raises(AnalysisError):
        DataType.from_value(object())


def test_common_type_widening():
    assert common_type(DataType.INT64, DataType.FLOAT64) is DataType.FLOAT64
    assert common_type(DataType.INT64, DataType.INT64) is DataType.INT64
    with pytest.raises(AnalysisError):
        common_type(DataType.INT64, DataType.STRING)


def test_schema_lookup_and_order():
    s = Schema.of(a=DataType.INT64, b=DataType.STRING)
    assert s.names == ["a", "b"]
    assert s.field("b").dtype is DataType.STRING
    assert s.index_of("a") == 0
    assert "a" in s and "z" not in s
    with pytest.raises(AnalysisError):
        s.field("z")


def test_schema_duplicate_rejected():
    with pytest.raises(AnalysisError):
        Schema([Field("x", DataType.INT64), Field("x", DataType.INT64)])


def test_empty_field_name_rejected():
    with pytest.raises(AnalysisError):
        Field("", DataType.INT64)


def test_schema_select_projection():
    s = Schema.of(a=DataType.INT64, b=DataType.STRING, c=DataType.BOOL)
    proj = s.select(["c", "a"])
    assert proj.names == ["c", "a"]


def test_schema_subset_relation():
    big = Schema.of(a=DataType.INT64, b=DataType.STRING, c=DataType.FLOAT64)
    small = Schema.of(b=DataType.STRING, a=DataType.INT64)
    mismatched = Schema.of(a=DataType.STRING)
    assert small.is_subset_of(big)
    assert not big.is_subset_of(small)
    assert not mismatched.is_subset_of(big)


def test_schema_dict_round_trip():
    s = Schema.of(a=DataType.INT64, b=DataType.STRING)
    assert Schema.from_dict(s.to_dict()) == s


def test_schema_equality_and_hash():
    a = Schema.of(x=DataType.INT64)
    b = Schema.of(x=DataType.INT64)
    assert a == b and hash(a) == hash(b)
    assert a != Schema.of(x=DataType.FLOAT64)


def test_empty_columns_match_dtypes():
    s = Schema.of(a=DataType.INT64, b=DataType.STRING)
    cols = empty_columns(s)
    assert cols["a"].dtype == np.int64 and len(cols["a"]) == 0
    assert cols["b"].dtype == object


def test_coerce_array_strings_stay_objects():
    arr = coerce_array(["a", "bb"], DataType.STRING)
    assert arr.dtype == object and list(arr) == ["a", "bb"]


def test_coerce_array_numeric():
    arr = coerce_array([1, 2, 3], DataType.INT64)
    assert arr.dtype == np.int64
