"""Aggregate states and grouped partial aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import (
    GroupedPartial,
    group_rows,
    make_state,
    partial_aggregate,
)
from repro.errors import ExecutionError


def test_count_state():
    s = make_state("COUNT")
    s.update(np.arange(5))
    s.update_count(3)
    assert s.final() == 8


def test_sum_state_empty_is_null():
    assert make_state("SUM").final() is None


def test_sum_state_preserves_int():
    s = make_state("SUM")
    s.update(np.array([1, 2, 3], dtype=np.int64))
    assert s.final() == 6 and isinstance(s.final(), int)


def test_min_max_states():
    lo, hi = make_state("MIN"), make_state("MAX")
    for arr in (np.array([3, 1]), np.array([2])):
        lo.update(arr)
        hi.update(arr)
    assert lo.final() == 1 and hi.final() == 3


def test_min_max_strings():
    s = np.empty(2, dtype=object)
    s[:] = ["b", "a"]
    lo = make_state("MIN")
    lo.update(s)
    assert lo.final() == "a"


def test_avg_state():
    s = make_state("AVG")
    s.update(np.array([1.0, 2.0]))
    s.update(np.array([6.0]))
    assert s.final() == pytest.approx(3.0)
    assert make_state("AVG").final() is None


def test_merge_equals_single_pass():
    a, b, merged = make_state("SUM"), make_state("SUM"), make_state("SUM")
    a.update(np.array([1.5, 2.5]))
    b.update(np.array([4.0]))
    a.merge(b)
    merged.update(np.array([1.5, 2.5, 4.0]))
    assert a.final() == pytest.approx(merged.final())


def test_unknown_aggregate():
    with pytest.raises(ExecutionError):
        make_state("MEDIAN")


def test_group_rows_no_keys():
    ids, reps = group_rows([], 4)
    assert list(ids) == [0, 0, 0, 0]
    assert list(reps) == [0]


def test_group_rows_multi_key():
    k1 = np.array([1, 1, 2, 2, 1])
    k2 = np.array([0, 1, 0, 0, 0])
    ids, reps = group_rows([k1, k2], 5)
    # groups: (1,0) -> rows 0,4 ; (1,1) -> row 1 ; (2,0) -> rows 2,3
    assert len(reps) == 3
    assert ids[0] == ids[4]
    assert ids[2] == ids[3]
    assert len({ids[0], ids[1], ids[2]}) == 3


def test_partial_aggregate_grouped():
    keys = [np.array(["a", "b", "a", "b"], dtype=object)]
    values = np.array([1.0, 2.0, 3.0, 4.0])
    partial = partial_aggregate(keys, ["SUM", "COUNT"], [values, None], 4)
    assert partial.groups[("a",)][0].final() == pytest.approx(4.0)
    assert partial.groups[("b",)][0].final() == pytest.approx(6.0)
    assert partial.groups[("a",)][1].final() == 2
    assert partial.rows_scanned == 4


def test_partial_aggregate_global_zero_rows_still_has_group():
    partial = partial_aggregate([], ["COUNT"], [None], 0)
    assert partial.groups[()][0].final() == 0


def test_partial_aggregate_grouped_zero_rows_empty():
    partial = partial_aggregate([np.empty(0, dtype=np.int64)], ["COUNT"], [None], 0)
    assert partial.groups == {}


def test_merge_partials():
    p1 = partial_aggregate([np.array([1, 1])], ["COUNT"], [None], 2)
    p2 = partial_aggregate([np.array([1, 2])], ["COUNT"], [None], 2)
    p1.merge(p2)
    assert p1.groups[(1,)][0].final() == 3
    assert p1.groups[(2,)][0].final() == 1
    assert p1.rows_scanned == 4


def test_merge_incompatible_rejected():
    p1 = GroupedPartial(1, ["COUNT"])
    p2 = GroupedPartial(2, ["COUNT"])
    with pytest.raises(ExecutionError):
        p1.merge(p2)


def test_estimated_bytes_grows_with_groups():
    small = partial_aggregate([np.array([1])], ["SUM"], [np.array([1.0])], 1)
    big = partial_aggregate([np.arange(100)], ["SUM"], [np.ones(100)], 100)
    assert big.estimated_bytes() > small.estimated_bytes()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
def test_property_grouped_count_matches_bincount(keys):
    arr = np.array(keys, dtype=np.int64)
    partial = partial_aggregate([arr], ["COUNT"], [None], len(arr))
    counts = np.bincount(arr)
    for value, states in partial.groups.items():
        assert states[0].final() == counts[value[0]]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.floats(-100, 100)), min_size=1, max_size=150
    )
)
def test_property_split_merge_equals_global(pairs):
    keys = np.array([k for k, _ in pairs], dtype=np.int64)
    vals = np.array([v for _, v in pairs])
    whole = partial_aggregate([keys], ["SUM", "AVG", "MIN", "MAX"], [vals] * 4, len(keys))
    half = len(pairs) // 2
    p1 = partial_aggregate([keys[:half]], ["SUM", "AVG", "MIN", "MAX"], [vals[:half]] * 4, half)
    p2 = partial_aggregate(
        [keys[half:]], ["SUM", "AVG", "MIN", "MAX"], [vals[half:]] * 4, len(pairs) - half
    )
    p1.merge(p2)
    assert set(p1.groups) == set(whole.groups)
    for key in whole.groups:
        for sa, sb in zip(p1.groups[key], whole.groups[key]):
            fa, fb = sa.final(), sb.final()
            if isinstance(fa, float):
                assert fa == pytest.approx(fb, rel=1e-9, abs=1e-9)
            else:
                assert fa == fb
