"""Log ingestion pipeline: nested records → local-FS columnar blocks."""

import pytest

from repro.workload.loggen import LogIngestor, generate_log_records


def test_records_have_nested_shape():
    records = generate_log_records(10, node_idx=0, hour=0)
    assert len(records) == 10
    assert "request" in records[0] and "page" in records[0]["request"]


def test_ingest_registers_flattened_table(fresh_cluster):
    ing = LogIngestor(fresh_cluster)
    ing.ingest_hour(0, records_per_node=50)
    table = ing.table
    assert "request.status" in table.schema
    assert "action" in table.schema
    assert table.num_rows == 50 * len(fresh_cluster.nodes)


def test_blocks_live_on_producing_nodes(fresh_cluster):
    ing = LogIngestor(fresh_cluster)
    ing.ingest_hour(0, records_per_node=20)
    for ref in ing.table.blocks:
        assert len(fresh_cluster.router.locations(ref.path)) == 1  # local FS: one replica


def test_queries_over_ingested_logs(fresh_cluster):
    ing = LogIngestor(fresh_cluster)
    ing.ingest_hour(0, records_per_node=100)
    ing.ingest_hour(1, records_per_node=100)
    total = fresh_cluster.query("SELECT COUNT(*) FROM service_logs")
    assert total.rows()[0][0] == 200 * len(fresh_cluster.nodes)
    by_hour = fresh_cluster.query(
        "SELECT hour, COUNT(*) c FROM service_logs GROUP BY hour ORDER BY hour"
    )
    assert by_hour.rows() == [(0, 100 * len(fresh_cluster.nodes)), (1, 100 * len(fresh_cluster.nodes))]


def test_dotted_column_predicates(fresh_cluster):
    ing = LogIngestor(fresh_cluster)
    ing.ingest_hour(0, records_per_node=100)
    ok = fresh_cluster.query("SELECT COUNT(*) FROM service_logs WHERE request.status = 200")
    bad = fresh_cluster.query("SELECT COUNT(*) FROM service_logs WHERE request.status != 200")
    total = fresh_cluster.query("SELECT COUNT(*) FROM service_logs")
    assert ok.rows()[0][0] + bad.rows()[0][0] == total.rows()[0][0]


def test_table_property_before_ingest(fresh_cluster):
    ing = LogIngestor(fresh_cluster)
    with pytest.raises(RuntimeError):
        _ = ing.table
