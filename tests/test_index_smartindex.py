"""SmartIndex manager: lookup, complement reuse, LRU, TTL, preferences."""

import numpy as np
import pytest

from repro.index.smartindex import SmartIndexEntry, SmartIndexManager
from repro.index.bitmap import BitVector
from repro.planner.cnf import AtomicPredicate, to_cnf
from repro.sql.ast import BinaryOperator
from repro.sql.parser import parse_expression


def _atom(text):
    from repro.planner.cnf import extract_atom

    return extract_atom(parse_expression(text))


def _mask(bits):
    return np.array(bits, dtype=bool)


def test_insert_then_exact_hit():
    mgr = SmartIndexManager()
    atom = _atom("c2 > 5")
    mgr.insert("b0", atom, _mask([1, 0, 1]), now=0.0)
    vec = mgr.lookup_atom("b0", atom, now=1.0)
    assert list(vec.to_bool_array()) == [True, False, True]
    assert mgr.stats.hits == 1 and mgr.stats.misses == 0


def test_complement_hit_via_bit_not():
    # Fig 7: index for `c2 > 5` answers `c2 <= 5` through one NOT.
    mgr = SmartIndexManager()
    mgr.insert("b0", _atom("c2 > 5"), _mask([1, 0, 1]), now=0.0)
    vec = mgr.lookup_atom("b0", _atom("c2 <= 5"), now=1.0)
    assert list(vec.to_bool_array()) == [False, True, False]
    assert mgr.stats.complement_hits == 1


def test_miss_counts():
    mgr = SmartIndexManager()
    assert mgr.lookup_atom("b0", _atom("x = 1"), now=0.0) is None
    assert mgr.stats.misses == 1


def test_block_scoped():
    mgr = SmartIndexManager()
    mgr.insert("b0", _atom("c2 > 5"), _mask([1]), now=0.0)
    assert mgr.lookup_atom("b1", _atom("c2 > 5"), now=0.0) is None


def test_lookup_clause_or_semantics():
    mgr = SmartIndexManager()
    cnf = to_cnf(parse_expression("a > 5 OR b < 2"))
    clause = cnf.clauses[0]
    mgr.insert("b0", clause.atoms[0], _mask([1, 0, 0]), now=0.0)
    assert mgr.lookup_clause("b0", clause, now=0.0) is None  # partial: no
    mgr.insert("b0", clause.atoms[1], _mask([0, 0, 1]), now=0.0)
    vec = mgr.lookup_clause("b0", clause, now=0.0)
    assert list(vec.to_bool_array()) == [True, False, True]


def test_cover_full_and_partial():
    mgr = SmartIndexManager()
    cnf = to_cnf(parse_expression("a > 5 AND b < 2"))
    mgr.insert("b0", cnf.clauses[0].atoms[0], _mask([1, 1, 0]), now=0.0)
    mask, missing = mgr.cover("b0", cnf, now=0.0)
    assert len(missing) == 1
    assert list(mask.to_bool_array()) == [True, True, False]
    mgr.insert("b0", cnf.clauses[1].atoms[0], _mask([1, 0, 1]), now=0.0)
    mask, missing = mgr.cover("b0", cnf, now=0.0)
    assert missing == []
    assert list(mask.to_bool_array()) == [True, False, False]


def test_ttl_expiry():
    mgr = SmartIndexManager(ttl_s=100.0)
    mgr.insert("b0", _atom("c2 > 5"), _mask([1]), now=0.0)
    assert mgr.lookup_atom("b0", _atom("c2 > 5"), now=99.0) is not None
    assert mgr.lookup_atom("b0", _atom("c2 > 5"), now=201.0) is None
    assert mgr.stats.evictions_ttl == 1


def test_preferred_survives_ttl():
    mgr = SmartIndexManager(ttl_s=100.0)
    mgr.prefer_predicate(_atom("c2 > 5").key)
    mgr.insert("b0", _atom("c2 > 5"), _mask([1]), now=0.0)
    assert mgr.lookup_atom("b0", _atom("c2 > 5"), now=500.0) is not None


def test_lru_eviction_under_memory_pressure():
    mgr = SmartIndexManager(memory_budget_bytes=400, compress=False)
    big = _mask([True] * 800)
    mgr.insert("b0", _atom("a > 1"), big, now=0.0)
    mgr.insert("b0", _atom("a > 2"), big, now=1.0)
    mgr.lookup_atom("b0", _atom("a > 1"), now=2.0)  # touch a>1
    mgr.insert("b0", _atom("a > 3"), big, now=3.0)
    # budget fits ~2 entries: a>2 (LRU) must have been evicted
    assert mgr.stats.evictions_lru >= 1
    assert mgr.lookup_atom("b0", _atom("a > 2"), now=4.0) is None


def test_preferred_last_victim():
    mgr = SmartIndexManager(memory_budget_bytes=400, compress=False)
    big = _mask([True] * 800)
    mgr.prefer_predicate(_atom("a > 1").key)
    mgr.insert("b0", _atom("a > 1"), big, now=0.0)
    mgr.insert("b0", _atom("a > 2"), big, now=1.0)
    mgr.insert("b0", _atom("a > 3"), big, now=2.0)
    assert mgr.lookup_atom("b0", _atom("a > 1"), now=3.0) is not None


def test_unprefer():
    mgr = SmartIndexManager()
    key = _atom("a > 1").key
    mgr.prefer_predicate(key)
    mgr.insert("b0", _atom("a > 1"), _mask([1]), now=0.0)
    mgr.unprefer_predicate(key)
    assert not mgr.entries_for_block("b0")[0].preferred


def test_compression_round_trip_through_entry():
    sparse = np.zeros(10_000, dtype=bool)
    sparse[5] = True
    entry = SmartIndexEntry.build("b0", "k", BitVector.from_bool_array(sparse), now=0.0)
    assert entry.compressed is not None  # sparse vector compresses
    assert (entry.vector().to_bool_array() == sparse).all()


def test_dense_random_vector_stays_raw():
    rng = np.random.default_rng(0)
    noisy = rng.integers(0, 2, 10_000).astype(bool)
    entry = SmartIndexEntry.build("b0", "k", BitVector.from_bool_array(noisy), now=0.0)
    assert entry.raw is not None  # RLE would not help


def test_invalidate_block():
    mgr = SmartIndexManager()
    mgr.insert("b0", _atom("a > 1"), _mask([1]), now=0.0)
    mgr.insert("b1", _atom("a > 1"), _mask([1]), now=0.0)
    mgr.invalidate_block("b0")
    assert mgr.lookup_atom("b0", _atom("a > 1"), now=0.0) is None
    assert mgr.lookup_atom("b1", _atom("a > 1"), now=0.0) is not None


def test_reinsert_replaces_bytes_accounting():
    mgr = SmartIndexManager(compress=False)
    mgr.insert("b0", _atom("a > 1"), _mask([1] * 100), now=0.0)
    before = mgr.used_bytes
    mgr.insert("b0", _atom("a > 1"), _mask([1] * 100), now=1.0)
    assert mgr.used_bytes == before
    assert mgr.entry_count == 1


def test_stats_miss_ratio():
    mgr = SmartIndexManager()
    mgr.lookup_atom("b0", _atom("a > 1"), now=0.0)
    mgr.insert("b0", _atom("a > 1"), _mask([1]), now=0.0)
    mgr.lookup_atom("b0", _atom("a > 1"), now=0.0)
    assert mgr.stats.miss_ratio() == pytest.approx(0.5)


def test_cover_sweeps_ttl_exactly_once():
    # A multi-clause CNF probe must not multiply TTL sweep cost: cover()
    # runs one sweep up front and passes sweep=False downward.
    mgr = SmartIndexManager()
    cnf = to_cnf(parse_expression("a > 5 AND b < 2 AND c = 3"))
    for clause in cnf.clauses:
        mgr.insert("b0", clause.atoms[0], _mask([1, 0, 1]), now=0.0)
    before = mgr.stats.ttl_sweeps
    _mask_out, missing = mgr.cover("b0", cnf, now=1.0)
    assert missing == []
    assert mgr.stats.ttl_sweeps == before + 1


def test_lookup_sweeps_ttl_exactly_once():
    mgr = SmartIndexManager()
    cnf = to_cnf(parse_expression("a > 5 OR b < 2"))
    clause = cnf.clauses[0]
    for atom in clause.atoms:
        mgr.insert("b0", atom, _mask([1, 0]), now=0.0)
    before = mgr.stats.ttl_sweeps
    assert mgr.lookup_clause("b0", clause, now=1.0) is not None
    assert mgr.stats.ttl_sweeps == before + 1
    assert mgr.lookup_atom("b0", clause.atoms[0], now=2.0) is not None
    assert mgr.stats.ttl_sweeps == before + 2


def test_preferred_entry_expires_after_unprefer():
    # Preferred entries ride out their TTL in _pinned_expired; once the
    # preference is dropped, the next sweep past sweep_interval_s
    # evicts them.
    mgr = SmartIndexManager(ttl_s=100.0, sweep_interval_s=10.0)
    atom = _atom("c2 > 5")
    mgr.prefer_predicate(atom.key)
    mgr.insert("b0", atom, _mask([1]), now=0.0)
    assert mgr.lookup_atom("b0", atom, now=150.0) is not None  # pinned past TTL
    mgr.unprefer_predicate(atom.key)
    mgr.lookup_atom("b0", atom, now=200.0)
    assert mgr.lookup_atom("b0", atom, now=211.0) is None
    assert mgr.stats.evictions_ttl == 1


def test_ttl_reinsert_restarts_clock():
    # Re-creating an entry must invalidate the old deque record: the old
    # record's expiry must not evict the fresh entry.
    mgr = SmartIndexManager(ttl_s=100.0)
    atom = _atom("c2 > 5")
    mgr.insert("b0", atom, _mask([1]), now=0.0)
    mgr.insert("b0", atom, _mask([1]), now=90.0)
    assert mgr.lookup_atom("b0", atom, now=150.0) is not None
    assert mgr.stats.evictions_ttl == 0
    assert mgr.lookup_atom("b0", atom, now=191.0) is None
