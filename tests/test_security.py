"""SSO authority, ACL grants, quota policy (§V-A)."""

import pytest

from repro.errors import AccessDeniedError, QuotaExceededError
from repro.security.acl import AccessControl, Quota, QuotaPolicy
from repro.security.auth import SSOAuthority


def test_issue_and_validate():
    auth = SSOAuthority()
    cred = auth.issue("alice", ["d1", "d2"], now=0.0, ttl_s=100.0)
    auth.validate(cred, now=50.0)
    assert cred.allows_domain("d1") and not cred.allows_domain("d3")


def test_expiry():
    auth = SSOAuthority()
    cred = auth.issue("alice", ["d"], now=0.0, ttl_s=10.0)
    with pytest.raises(AccessDeniedError, match="expired"):
        auth.validate(cred, now=11.0)


def test_revocation():
    auth = SSOAuthority()
    cred = auth.issue("alice", ["d"])
    auth.revoke(cred)
    with pytest.raises(AccessDeniedError, match="revoked"):
        auth.validate(cred)


def test_cross_authority_tokens_fail():
    a, b = SSOAuthority(b"secret-a"), SSOAuthority(b"secret-b")
    cred = a.issue("alice", ["d"])
    with pytest.raises(AccessDeniedError, match="verification"):
        b.validate(cred)


def test_acl_grant_revoke():
    acl = AccessControl()
    acl.grant("u", "T1")
    assert acl.can_read("u", "T1")
    assert not acl.can_read("u", "T2")
    acl.revoke("u", "T1")
    assert not acl.can_read("u", "T1")


def test_acl_admin_reads_everything():
    acl = AccessControl()
    acl.make_admin("ops")
    assert acl.can_read("ops", "anything")


def test_acl_check_read_reports_denied_tables():
    acl = AccessControl()
    acl.grant("u", "A")
    with pytest.raises(AccessDeniedError) as err:
        acl.check_read("u", ["A", "B", "C"])
    assert "'B'" in str(err.value) and "'C'" in str(err.value)


def test_quota_queries_per_day():
    policy = QuotaPolicy(Quota(max_queries_per_day=2))
    policy.admit_query("u", now=0.0)
    policy.admit_query("u", now=100.0)
    with pytest.raises(QuotaExceededError):
        policy.admit_query("u", now=200.0)


def test_quota_window_resets_daily():
    policy = QuotaPolicy(Quota(max_queries_per_day=1))
    policy.admit_query("u", now=0.0)
    policy.admit_query("u", now=90_000.0)  # next day


def test_quota_scan_bytes():
    policy = QuotaPolicy(Quota(max_scan_bytes_per_day=100.0))
    policy.admit_query("u", now=0.0)
    policy.charge_scan("u", 60.0, now=1.0)
    with pytest.raises(QuotaExceededError):
        policy.charge_scan("u", 60.0, now=2.0)
    assert policy.usage("u") == (1, 60.0)


def test_per_user_quota_override():
    policy = QuotaPolicy(Quota(max_queries_per_day=1))
    policy.set_quota("vip", Quota(max_queries_per_day=10))
    policy.admit_query("vip", now=0.0)
    policy.admit_query("vip", now=1.0)  # would fail under the default
