"""Encoding round-trip tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.encoding import (
    BitPackedEncoding,
    DictionaryEncoding,
    PlainEncoding,
    RunLengthEncoding,
    choose_encoding,
    codec_by_tag,
    run_length_split,
)
from repro.columnar.schema import DataType
from repro.errors import StorageError

_CODECS = [PlainEncoding(), RunLengthEncoding(), DictionaryEncoding()]


def _strings(values):
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_int_round_trip(codec):
    arr = np.array([5, 5, 5, -3, 0, 2**40, -(2**40)], dtype=np.int64)
    assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_float_round_trip(codec):
    arr = np.array([0.0, -1.5, 3.25, 1e300, -1e-300], dtype=np.float64)
    assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_string_round_trip(codec):
    arr = _strings(["", "a", "aa", "a", "中文", "naïve", "a" * 500])
    out = codec.decode(codec.encode(arr), len(arr))
    assert list(out) == list(arr)


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_empty_round_trip(codec):
    arr = np.array([], dtype=np.int64)
    assert len(codec.decode(codec.encode(arr), 0)) == 0


def test_bitpacked_round_trip():
    codec = BitPackedEncoding()
    arr = np.array([True, False, True, True, False, False, True, False, True], dtype=np.bool_)
    assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


def test_bitpacked_rejects_non_bool():
    with pytest.raises(StorageError):
        BitPackedEncoding().encode(np.arange(4))


def test_codec_by_tag_round_trip():
    for codec in _CODECS + [BitPackedEncoding()]:
        assert codec_by_tag(codec.tag).name == codec.name
    with pytest.raises(StorageError):
        codec_by_tag(99)


def test_run_length_split():
    arr = np.array([1, 1, 2, 2, 2, 3], dtype=np.int64)
    values, lengths = run_length_split(arr)
    assert list(values) == [1, 2, 3]
    assert list(lengths) == [2, 3, 1]


def test_run_length_split_strings():
    arr = _strings(["a", "a", "b"])
    values, lengths = run_length_split(arr)
    assert list(values) == ["a", "b"] and list(lengths) == [2, 1]


def test_choose_encoding_bool_always_bitpacked():
    arr = np.array([True, False], dtype=np.bool_)
    assert choose_encoding(arr, DataType.BOOL).name == "bitpacked"


def test_choose_encoding_prefers_rle_for_sorted_runs():
    arr = np.repeat(np.arange(10, dtype=np.int64), 1000)
    assert choose_encoding(arr, DataType.INT64).name == "rle"


def test_choose_encoding_prefers_dictionary_for_low_cardinality_shuffled():
    rng = np.random.default_rng(0)
    arr = rng.integers(0, 3, 10_000).astype(np.int64) * 10**12
    name = choose_encoding(arr, DataType.INT64).name
    assert name in ("dictionary", "rle")
    # Encoded size must actually beat plain.
    codec = choose_encoding(arr, DataType.INT64)
    assert len(codec.encode(arr)) < len(PlainEncoding().encode(arr))


def test_choose_encoding_high_entropy_plain():
    rng = np.random.default_rng(1)
    arr = rng.integers(-(2**62), 2**62, 5000).astype(np.int64)
    assert choose_encoding(arr, DataType.INT64).name == "plain"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=300))
def test_property_int_round_trip_all_codecs(values):
    arr = np.array(values, dtype=np.int64)
    for codec in _CODECS:
        out = codec.decode(codec.encode(arr), len(arr))
        assert (out == arr).all()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(max_size=40), max_size=120))
def test_property_string_round_trip_all_codecs(values):
    arr = _strings(values)
    for codec in _CODECS:
        out = codec.decode(codec.encode(arr), len(arr))
        assert list(out) == values


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), max_size=300))
def test_property_bitpacked_round_trip(values):
    arr = np.array(values, dtype=np.bool_)
    codec = BitPackedEncoding()
    assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=True, width=64), max_size=200
    )
)
def test_property_float_round_trip(values):
    arr = np.array(values, dtype=np.float64)
    for codec in _CODECS:
        out = codec.decode(codec.encode(arr), len(arr))
        assert (out == arr).all()
