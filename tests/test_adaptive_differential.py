"""Differential wall for the adaptive re-optimizer (S53).

Twin clusters — one frozen (``adaptive=None``), one with the pilot-slice
re-optimizer on — run the same queries over identical data.  Rows must
match (float aggregates up to addition-order ulps, everything else
exactly) and, on the misestimate scenarios the re-optimizer exists for,
the re-planned run must never exceed the frozen plan's modeled cost.

A Hypothesis section proves the skew-split algebra: splitting a block's
rows into arbitrary sub-partitions (including empty ones) and merging
the partial aggregates is equivalent to aggregating the block unsplit,
for SUM/COUNT/MIN/MAX and NaN group keys — the property the hot-key
splitter relies on for correctness.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.client import FeisuClient
from repro.cluster.node import LeafConfig
from repro.engine.aggregates import GroupedPartial, partial_aggregate
from repro.planner.adaptive import AdaptiveConfig, plan_fingerprint
from repro.workload.generator import skewed_join_dataset, skewed_join_queries
from tests._oracle import compare_rows
from tests.conftest import CLICKS_SCHEMA, make_clicks_columns
from tests.test_integration_differential import _random_join_query, _random_query

pytestmark = pytest.mark.adaptive

FACT_SCHEMA = Schema.of(
    k=DataType.INT64, v=DataType.FLOAT64, w=DataType.INT64, note=DataType.STRING
)
DIM_SCHEMA = Schema.of(k=DataType.INT64, label=DataType.STRING)


# -- twin construction ----------------------------------------------------------


def _clicks_twin(adaptive) -> FeisuCluster:
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            adaptive=adaptive,
        )
    )
    columns = make_clicks_columns()
    cluster.load_table("T", CLICKS_SCHEMA, columns, storage="storage-a", block_rows=1500)
    dim = {
        "c2": np.arange(10),
        "label": np.array([f"grp{i}" for i in range(10)], dtype=object),
        "weight": np.linspace(0.1, 1.0, 10),
    }
    cluster.load_table(
        "D",
        Schema.of(c2=DataType.INT64, label=DataType.STRING, weight=DataType.FLOAT64),
        dim,
        storage="storage-b",
        block_rows=100,
    )
    return cluster


def _skew_twin(adaptive) -> FeisuCluster:
    """Skewed fact/dim pair where the planner's CONTAINS estimate is ~6x
    off — every query crosses the re-plan trigger.  SmartIndex is off on
    both twins: pilot slices can never use it, and leaving it on for the
    frozen twin only would compare different machines."""
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=8,
            leaf=LeafConfig(enable_smartindex=False),
            adaptive=adaptive,
        )
    )
    fact, dim = skewed_join_dataset(20000, seed=9)
    cluster.load_table(
        "T", FACT_SCHEMA, fact, storage="storage-a", block_rows=5000, scale_factor=500
    )
    cluster.load_table("D", DIM_SCHEMA, dim, storage="storage-b", block_rows=100)
    return cluster


@pytest.fixture(scope="module")
def adaptive_twins():
    """Identical clicks data, one cluster per planner mode."""
    return _clicks_twin(None), _clicks_twin(AdaptiveConfig())


@pytest.fixture(scope="module")
def skew_twins():
    return _skew_twin(None), _skew_twin(AdaptiveConfig())


def _assert_rows_match(frozen_result, adaptive_result, sql):
    assert adaptive_result.columns == frozen_result.columns, sql
    divergence = compare_rows(adaptive_result.rows(), frozen_result.rows())
    assert divergence is None, (sql, divergence)


# -- figure-shaped + randomized queries -----------------------------------------

#: The workloads behind the committed figures plus edge shapes.  Where a
#: LIMIT appears, the ORDER BY covers every selected column so tied rows
#: are identical tuples — the cut is insensitive to arrival order.
ADAPTIVE_DIFFERENTIAL_QUERIES = [
    "SELECT COUNT(*) AS n FROM T WHERE c1 > 50",
    "SELECT COUNT(*) AS n FROM T WHERE url CONTAINS 'site3'",
    "SELECT province, COUNT(*) AS n, SUM(c1) AS s FROM T "
    "WHERE c2 < 7 GROUP BY province ORDER BY province",
    "SELECT c2 AS k, AVG(clicks) AS a FROM T WHERE c1 >= 20 GROUP BY k ORDER BY k",
    "SELECT c1 AS a, c2 AS b, url FROM T WHERE c1 < 15 AND c2 = 3 "
    "ORDER BY a, b, url LIMIT 25",
    "SELECT label AS g, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2 "
    "WHERE c1 < 40 GROUP BY g ORDER BY g",
    "SELECT SUM(weight) AS w FROM T LEFT JOIN D ON T.c2 = D.c2 WHERE c1 > 90",
    "SELECT c2 AS k, COUNT(*) AS n FROM T GROUP BY k "
    "HAVING COUNT(*) > 100 ORDER BY k",
    "SELECT MIN(c1) AS lo, MAX(c1) AS hi, SUM(c2) AS s FROM T",
    "SELECT COUNT(*) AS n FROM T WHERE c1 > 10000",
    "SELECT COUNT(*) AS n FROM T WHERE NOT (url CONTAINS 'site1') AND c2 <= 4",
    "SELECT c1 AS a FROM T WHERE c1 < 3 OR c2 = 9 ORDER BY a LIMIT 50",
]


@pytest.mark.parametrize("sql", ADAPTIVE_DIFFERENTIAL_QUERIES)
def test_adaptive_matches_frozen(adaptive_twins, sql):
    frozen, adaptive = adaptive_twins
    # Two rounds: round two runs the frozen twin index-covered, so the
    # comparison pins both the cold and covered frozen paths.
    for _ in range(2):
        _assert_rows_match(frozen.query(sql), adaptive.query(sql), sql)


@pytest.mark.parametrize("seed", range(4))
def test_adaptive_matches_frozen_random(adaptive_twins, seed):
    frozen, adaptive = adaptive_twins
    rng = random.Random(2000 + seed)
    for _ in range(4):
        sql = _random_query(rng)
        _assert_rows_match(frozen.query(sql), adaptive.query(sql), sql)


@pytest.mark.parametrize("seed", range(2))
def test_adaptive_matches_frozen_random_joins(adaptive_twins, seed):
    frozen, adaptive = adaptive_twins
    rng = random.Random(3000 + seed)
    for _ in range(3):
        sql = _random_join_query(rng)
        _assert_rows_match(frozen.query(sql), adaptive.query(sql), sql)


# -- misestimate scenarios: re-plan fires, cost never regresses -----------------


def test_misestimate_replans_and_never_costs_more(skew_twins):
    frozen, adaptive = skew_twins
    for sql in skewed_join_queries(6, seed=3):
        f = frozen.query(sql)
        a = adaptive.query(sql)
        _assert_rows_match(f, a, sql)
        # The CONTAINS default selectivity is ~6x below the data's match
        # rate, so every one of these runs must have re-planned...
        assert a.stats.get("adaptive_waves", 0) == 2, sql
        assert a.stats.get("adaptive_replans", 0) >= 1, sql
        # ...and the re-planned run must never exceed the frozen plan's
        # modeled cost (slices charge proportionally; per-slice rounding
        # is the only slack allowed) nor its simulated latency.
        assert (
            a.stats["io_bytes_modeled"] <= f.stats["io_bytes_modeled"] * 1.001 + 8192
        ), sql
        assert a.stats["response_time_s"] <= f.stats["response_time_s"] * 1.02, sql


def test_no_misestimate_no_replan(adaptive_twins):
    """Accurate estimates over uniform data must not trigger a re-plan:
    a pure numeric range predicate is estimated from real histograms and
    the clicks data has no hot key, so the checkpoint observes nothing
    worth acting on (the skewed twin, by contrast, legitimately splits
    even when selectivity is accurate — its data IS skewed)."""
    _, adaptive = adaptive_twins
    result = adaptive.query("SELECT COUNT(*) AS n FROM T WHERE c1 >= 0")
    assert result.stats.get("adaptive_waves", 0) == 2
    assert result.stats.get("adaptive_replans", 0) == 0
    assert result.stats.get("adaptive_splits", 0) == 0


# -- the QueryHistory digest fix (pinned regression) ----------------------------


def test_history_keeps_original_plan_digest(skew_twins):
    """After a mid-query re-plan, history must retain the ORIGINAL plan
    fingerprint (what the optimizer first decided) and record the post
    re-plan digest separately — agreeing with EXPLAIN ANALYZE."""
    _, adaptive = skew_twins
    adaptive.create_user("differ", tables=["T", "D"])
    client = FeisuClient(adaptive, "differ")
    sql = skewed_join_queries(1, seed=11)[0]
    job = client.query_job(sql)
    assert job.stats.adaptive_replans >= 1
    entry = client.history.entries()[-1]
    assert entry.plan_digest == plan_fingerprint(job.plan)
    assert entry.post_plan_digest == job.replanned_plan_digest
    assert entry.post_plan_digest is not None
    assert entry.post_plan_digest != entry.plan_digest

    text = client.explain_analyze(sql)
    assert "actual adaptive:" in text
    assert (
        f"plan digest: {entry.plan_digest} -> {entry.post_plan_digest} (re-planned)"
        in text
    )


def test_frozen_history_digest_recorded(adaptive_twins):
    frozen, _ = adaptive_twins
    frozen.create_user("differ2", tables=["T"])
    client = FeisuClient(frozen, "differ2")
    job = client.query_job("SELECT COUNT(*) AS n FROM T WHERE c1 > 50")
    entry = client.history.entries()[-1]
    assert entry.plan_digest == plan_fingerprint(job.plan)
    assert entry.post_plan_digest is None


# -- skew-split algebra: split-then-merge == unsplit ----------------------------

_FUNCS = ["COUNT", "SUM", "MIN", "MAX"]


def _partial_over(keys: np.ndarray, values: np.ndarray) -> GroupedPartial:
    arrays = [None if f == "COUNT" else values for f in _FUNCS]
    return partial_aggregate([keys], _FUNCS, arrays, len(keys))


def _assert_partials_equal(whole: GroupedPartial, merged: GroupedPartial) -> None:
    assert set(whole.groups) == set(merged.groups)
    for key, states in whole.groups.items():
        for state_a, state_b in zip(states, merged.groups[key]):
            a, b = state_a.final(), state_b.final()
            if isinstance(a, float) and isinstance(b, float):
                assert (math.isnan(a) and math.isnan(b)) or math.isclose(
                    a, b, rel_tol=1e-9, abs_tol=1e-9
                ), key
            else:
                assert a == b, key


@settings(max_examples=80, deadline=None)
@given(
    keys=st.lists(
        st.sampled_from([0.0, 1.0, 2.0, float("nan")]), min_size=0, max_size=48
    ),
    cuts=st.lists(st.integers(0, 48), max_size=5),
    data=st.data(),
)
def test_split_then_merge_equals_unsplit(keys, cuts, data):
    n = len(keys)
    values = data.draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    key_arr = np.array(keys, dtype=np.float64)
    val_arr = np.array(values, dtype=np.float64)
    whole = _partial_over(key_arr, val_arr)
    # Arbitrary sub-partitions, duplicates allowed -> empty slices too.
    edges = [0] + sorted(min(c, n) for c in cuts) + [n]
    merged = GroupedPartial(num_keys=1, agg_funcs=list(_FUNCS))
    for lo, hi in zip(edges, edges[1:]):
        merged.merge(_partial_over(key_arr[lo:hi], val_arr[lo:hi]))
    _assert_partials_equal(whole, merged)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(-2, 2), min_size=1, max_size=32),
    cut=st.integers(0, 32),
)
def test_split_then_merge_integer_sums_exact(keys, cut):
    """Integer SUM/COUNT must be bit-exact under any split."""
    n = len(keys)
    key_arr = np.array(keys, dtype=np.int64)
    val_arr = np.arange(n, dtype=np.int64) * 7 - 3
    whole = partial_aggregate([key_arr], ["COUNT", "SUM"], [None, val_arr], n)
    lo = min(cut, n)
    merged = partial_aggregate([key_arr[:lo]], ["COUNT", "SUM"], [None, val_arr[:lo]], lo)
    merged.merge(
        partial_aggregate([key_arr[lo:]], ["COUNT", "SUM"], [None, val_arr[lo:]], n - lo)
    )
    assert {k: [s.final() for s in v] for k, v in whole.groups.items()} == {
        k: [s.final() for s in v] for k, v in merged.groups.items()
    }


def test_nan_group_keys_merge_across_partials():
    """Pinned regression: distinct NaN float objects from different tasks
    must land in ONE group when partials merge (``nan != nan`` would
    otherwise duplicate the group per producing task)."""
    a = _partial_over(np.array([float("nan"), 1.0]), np.array([2.0, 3.0]))
    b = _partial_over(np.array([float("nan")]), np.array([5.0]))
    a.merge(b)
    nan_keys = [k for k in a.groups if k[0] != k[0]]
    assert len(nan_keys) == 1
    count, total, lo, hi = (s.final() for s in a.groups[nan_keys[0]])
    assert count == 2
    assert total == pytest.approx(7.0)
    assert (lo, hi) == (2.0, 5.0)
