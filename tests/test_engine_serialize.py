"""Task-result serialization (the §V-C spill format)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import partial_aggregate
from repro.engine.executor import TaskExecutionReport, TaskResult
from repro.engine.serialize import deserialize_result, serialize_result
from repro.errors import ExecutionError
from repro.planner.expressions import Frame


def _report(task_id="t0"):
    return TaskExecutionReport(
        task_id=task_id,
        rows_in_block=100,
        rows_matched=40,
        io_bytes=1234,
        io_seeks=1,
        cpu_ops=500.0,
        index_full_cover=True,
        index_clause_hits=2,
        index_clause_misses=1,
        btree_clauses=0,
        scale_factor=1500.0,
    )


def test_frame_round_trip():
    s = np.empty(3, dtype=object)
    s[:] = ["a", "", "中文"]
    frame = Frame.from_columns(
        {
            "i": np.array([1, -2, 3], dtype=np.int64),
            "f": np.array([0.5, -1.5, 2.0]),
            "s": s,
            "b": np.array([True, False, True]),
        }
    )
    result = TaskResult("t0", frame=frame, report=_report())
    back = deserialize_result(serialize_result(result))
    assert back.task_id == "t0"
    assert back.frame.num_rows == 3
    for col in frame.columns:
        assert list(back.frame.column(col)) == list(frame.column(col))


def test_columnless_frame_round_trip():
    result = TaskResult("t0", frame=Frame({}, 17), report=_report())
    back = deserialize_result(serialize_result(result))
    assert back.frame.num_rows == 17 and back.frame.columns == {}


def test_partial_round_trip_all_aggregates():
    keys = [np.array(["x", "y", "x"], dtype=object)]
    vals = np.array([1.0, 2.0, 3.0])
    partial = partial_aggregate(
        keys, ["COUNT", "SUM", "AVG", "MIN", "MAX"], [None, vals, vals, vals, vals], 3
    )
    result = TaskResult("t1", partial=partial, report=_report("t1"))
    back = deserialize_result(serialize_result(result))
    assert set(back.partial.groups) == {("x",), ("y",)}
    orig = [s.final() for s in partial.groups[("x",)]]
    copy = [s.final() for s in back.partial.groups[("x",)]]
    assert copy == pytest.approx(orig)


def test_partial_int_sum_stays_int():
    partial = partial_aggregate(
        [], ["SUM"], [np.array([1, 2, 3], dtype=np.int64)], 3
    )
    result = TaskResult("t2", partial=partial, report=_report("t2"))
    back = deserialize_result(serialize_result(result))
    value = back.partial.groups[()][0].final()
    assert value == 6 and isinstance(value, int)


def test_restored_partials_merge_with_live_ones():
    a = partial_aggregate([np.array([1, 2])], ["COUNT"], [None], 2)
    b = partial_aggregate([np.array([2, 2])], ["COUNT"], [None], 2)
    restored = deserialize_result(
        serialize_result(TaskResult("t", partial=b, report=_report()))
    ).partial
    a.merge(restored)
    assert a.groups[(2,)][0].final() == 3


def test_report_survives():
    frame = Frame.from_columns({"x": np.array([1])})
    back = deserialize_result(serialize_result(TaskResult("t9", frame=frame, report=_report("t9"))))
    assert back.report.scale_factor == 1500.0
    assert back.report.index_full_cover
    assert back.report.io_bytes == 1234


def test_empty_payload_rejected():
    with pytest.raises(ExecutionError):
        serialize_result(TaskResult("t", report=_report()))


def test_unknown_tag_rejected():
    frame = Frame.from_columns({"x": np.array([1])})
    payload = bytearray(serialize_result(TaskResult("t", frame=frame, report=_report())))
    payload[0] = 0x7F
    with pytest.raises(ExecutionError, match="tag"):
        deserialize_result(bytes(payload))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-(2**40), 2**40), max_size=60),
    st.lists(st.text(max_size=12), max_size=60),
)
def test_property_frame_round_trip(ints, strs):
    n = min(len(ints), len(strs))
    s = np.empty(n, dtype=object)
    for i in range(n):
        s[i] = strs[i]
    frame = Frame.from_columns({"i": np.array(ints[:n], dtype=np.int64), "s": s})
    back = deserialize_result(
        serialize_result(TaskResult("t", frame=frame, report=_report()))
    )
    assert list(back.frame.column("i")) == ints[:n]
    assert list(back.frame.column("s")) == strs[:n]
