"""BitVector algebra and RLE compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.bitmap import BitVector, rle_compress, rle_decompress


def _bv(bits):
    return BitVector.from_bool_array(np.array(bits, dtype=bool))


def test_round_trip_bool_array():
    bits = [True, False, True, True, False, False, False, True, True, False]
    assert list(_bv(bits).to_bool_array()) == bits


def test_count_and_any():
    assert _bv([1, 0, 1]).count() == 2
    assert _bv([0, 0]).count() == 0
    assert not _bv([0, 0]).any()
    assert _bv([0, 1]).any()


def test_zeros_ones():
    assert BitVector.zeros(13).count() == 0
    ones = BitVector.ones(13)
    assert ones.count() == 13
    assert ones.length == 13


def test_and_or_not():
    a, b = _bv([1, 1, 0, 0, 1]), _bv([1, 0, 1, 0, 0])
    assert list((a & b).to_bool_array()) == [1, 0, 0, 0, 0]
    assert list((a | b).to_bool_array()) == [1, 1, 1, 0, 1]
    assert list((~a).to_bool_array()) == [0, 0, 1, 1, 0]


def test_not_masks_padding_bits():
    bv = ~BitVector.zeros(3)
    assert bv.count() == 3  # not 8


def test_double_negation_identity():
    a = _bv([1, 0, 1, 1, 0, 1, 0])
    assert ~~a == a


def test_length_mismatch_rejected():
    with pytest.raises(IndexError_):
        _ = _bv([1, 0]) & _bv([1, 0, 1])


def test_equality():
    assert _bv([1, 0]) == _bv([1, 0])
    assert _bv([1, 0]) != _bv([0, 1])


def test_rle_round_trip_sparse():
    bits = [False] * 1000 + [True] * 8 + [False] * 1000
    bv = _bv(bits)
    payload, length = rle_compress(bv)
    assert length == len(bits)
    assert len(payload) < bv.nbytes  # long runs compress
    back = rle_decompress(payload, length)
    assert back == bv


def test_rle_round_trip_empty():
    bv = BitVector.zeros(0)
    payload, length = rle_compress(bv)
    assert rle_decompress(payload, 0).length == 0


def test_rle_corrupt_payload_rejected():
    bv = _bv([1, 0, 1])
    payload, _ = rle_compress(bv)
    with pytest.raises(IndexError_, match="corrupt"):
        rle_decompress(payload, 1000)


def test_requires_uint8_buffer():
    with pytest.raises(IndexError_):
        BitVector(np.zeros(2, dtype=np.int64), 16)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.booleans(), max_size=500))
def test_property_rle_round_trip(bits):
    bv = _bv(bits) if bits else BitVector.zeros(0)
    payload, length = rle_compress(bv)
    assert rle_decompress(payload, length) == bv


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=200), st.lists(st.booleans(), min_size=1, max_size=200))
def test_property_de_morgan(a_bits, b_bits):
    n = min(len(a_bits), len(b_bits))
    a, b = _bv(a_bits[:n]), _bv(b_bits[:n])
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_property_count_matches_numpy(bits):
    assert _bv(bits).count() == int(np.sum(bits))
