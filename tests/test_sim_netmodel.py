"""Unit tests for the network topology and traffic classes."""

import pytest

from repro.errors import FeisuError
from repro.sim.events import Simulator
from repro.sim.netmodel import (
    CLASS_BANDWIDTH_SHARE,
    NetworkTopology,
    NodeAddress,
    TopologySpec,
    TrafficClass,
)


@pytest.fixture()
def net():
    sim = Simulator()
    return sim, NetworkTopology(sim, TopologySpec(datacenters=2, racks_per_datacenter=2, nodes_per_rack=3))


def test_topology_spec_counts():
    spec = TopologySpec(2, 3, 4)
    assert spec.total_nodes == 24
    assert len(spec.addresses()) == 24
    assert spec.addresses()[0] == NodeAddress(0, 0, 0)


def test_distance_hierarchy(net):
    _, topo = net
    a = NodeAddress(0, 0, 0)
    same_node = NodeAddress(0, 0, 0)
    same_rack = NodeAddress(0, 0, 1)
    same_dc = NodeAddress(0, 1, 0)
    other_dc = NodeAddress(1, 0, 0)
    assert topo.distance(a, same_node) == 0
    assert topo.distance(a, same_rack) < topo.distance(a, same_dc)
    assert topo.distance(a, same_dc) < topo.distance(a, other_dc)


def test_path_symmetric_in_length(net):
    _, topo = net
    a, b = NodeAddress(0, 0, 1), NodeAddress(1, 1, 2)
    assert len(topo.path(a, b)) == len(topo.path(b, a))


def test_invalid_address_rejected(net):
    _, topo = net
    with pytest.raises(FeisuError):
        topo.distance(NodeAddress(0, 0, 0), NodeAddress(9, 0, 0))


def test_local_transfer_is_instant(net):
    sim, topo = net
    ev = topo.transfer(NodeAddress(0, 0, 0), NodeAddress(0, 0, 0), 10**9)
    sim.run_until_complete(ev)
    assert sim.now == 0.0


def test_cross_dc_slower_than_same_rack(net):
    sim, topo = net
    a = NodeAddress(0, 0, 0)
    t_rack = topo.transfer_time_estimate(a, NodeAddress(0, 0, 1), 10**7)
    t_dc = topo.transfer_time_estimate(a, NodeAddress(1, 0, 0), 10**7)
    assert t_dc > t_rack


def test_read_class_gets_least_bandwidth(net):
    _, topo = net
    a, b = NodeAddress(0, 0, 0), NodeAddress(0, 1, 0)
    t_read = topo.transfer_time_estimate(a, b, 10**8, TrafficClass.READ)
    t_write = topo.transfer_time_estimate(a, b, 10**8, TrafficClass.WRITE)
    t_ctrl = topo.transfer_time_estimate(a, b, 10**8, TrafficClass.CONTROL)
    assert t_ctrl < t_write < t_read


def test_control_traffic_skips_data_queue(net):
    sim, topo = net
    a, b = NodeAddress(0, 0, 0), NodeAddress(0, 0, 1)
    # Saturate the ToR link with a large read.
    topo.transfer(a, b, 10**9, TrafficClass.READ)
    ctrl_done = []
    topo.transfer(a, b, 256, TrafficClass.CONTROL).add_callback(
        lambda e: ctrl_done.append(sim.now)
    )
    sim.run()
    # Control message completes in well under the data transfer's time.
    assert ctrl_done[0] < 0.01


def test_data_transfers_queue_on_shared_link(net):
    sim, topo = net
    a, b = NodeAddress(0, 0, 0), NodeAddress(0, 0, 1)
    ends = []
    topo.transfer(a, b, 10**7, TrafficClass.READ).add_callback(lambda e: ends.append(sim.now))
    topo.transfer(a, b, 10**7, TrafficClass.READ).add_callback(lambda e: ends.append(sim.now))
    sim.run()
    assert ends[1] >= 2 * (ends[0] - 0.001)  # second waited for the first


def test_class_shares_ordering():
    assert (
        CLASS_BANDWIDTH_SHARE[TrafficClass.CONTROL]
        > CLASS_BANDWIDTH_SHARE[TrafficClass.WRITE]
        > CLASS_BANDWIDTH_SHARE[TrafficClass.READ]
    )


def test_link_utilization_reporting(net):
    sim, topo = net
    a, b = NodeAddress(0, 0, 0), NodeAddress(0, 0, 1)
    topo.transfer(a, b, 10**7, TrafficClass.READ)
    sim.run()
    assert any(link.bytes_carried > 0 for link in topo.links())
    assert all(0.0 <= link.utilization() <= 1.0 for link in topo.links())
