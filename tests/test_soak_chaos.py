"""Soak test: sustained mixed load with injected failures.

Not a micro-test — one scenario that exercises scheduling, SmartIndex
churn, backup tasks, partial recovery and membership together: a stream
of drill-down queries runs while leaves crash and recover underneath it.
Invariants: the simulator never deadlocks, every admitted job reaches a
terminal state, and every successful answer is exactly correct (checked
against the shared reference oracle).

All randomness flows through one seeded ``np.random.default_rng`` per
test, so a failure is reproducible from the seed alone.  For seeded
*fault plans* (network faults, zombies, partitions) see ``tests/chaos``.
"""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.cluster.jobs import JobStatus

from tests._oracle import _row_dicts, reference_execute


@pytest.fixture(scope="module")
def soak_env():
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=6))
    rng = np.random.default_rng(99)
    n = 12_000
    columns = {
        "a": rng.integers(0, 40, n),
        "b": rng.random(n),
        "tag": np.array([f"t{i % 13}" for i in range(n)], dtype=object),
    }
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64, tag=DataType.STRING),
        columns,
        storage="storage-a",
        block_rows=600,
    )
    return cluster, columns


def test_soak_with_leaf_chaos(soak_env):
    cluster, columns = soak_env
    rng = np.random.default_rng(4)
    rows = _row_dicts(columns)
    alive_floor = 4  # never kill below this many leaves
    crashed = []
    outcomes = {"ok": 0, "failed": 0, "wrong": 0}

    for step in range(60):
        # chaos: maybe crash one leaf, maybe recover one
        roll = rng.random()
        live = [leaf for leaf in cluster.leaves if leaf.alive]
        if roll < 0.25 and len(live) > alive_floor:
            victim = live[int(rng.integers(len(live)))]
            victim.crash()
            crashed.append(victim)
        elif roll < 0.4 and crashed:
            crashed.pop(int(rng.integers(len(crashed)))).recover()

        lo = int(rng.integers(0, 35))
        hi = lo + int(rng.integers(1, 6))
        sql = f"SELECT COUNT(*) FROM T WHERE a >= {lo} AND a < {hi}"
        job = cluster.query_job(sql)
        if job.status is JobStatus.SUCCEEDED and job.result.processed_ratio == 1.0:
            [(expected,)] = reference_execute(sql, rows)
            if job.result.rows()[0][0] == expected:
                outcomes["ok"] += 1
            else:
                outcomes["wrong"] += 1
        elif job.status in (JobStatus.FAILED, JobStatus.TIMED_OUT):
            outcomes["failed"] += 1
        else:  # succeeded with partial data: count separately as ok-partial
            outcomes["ok"] += 1

    # No wrong answers, ever.
    assert outcomes["wrong"] == 0
    # The vast majority of queries survive the chaos via backups/replicas.
    assert outcomes["ok"] >= 55
    # And the simulation is still healthy afterwards.
    for leaf in crashed:
        leaf.recover()
    final = cluster.query("SELECT COUNT(*) FROM T")
    assert final.rows()[0][0] == 12_000


def test_soak_index_stays_consistent_across_chaos(soak_env):
    cluster, columns = soak_env
    # After all the churn above, covered answers still match cold answers.
    warm = cluster.query("SELECT COUNT(*) FROM T WHERE a >= 5 AND a < 10")
    [(expected,)] = reference_execute(
        "SELECT COUNT(*) FROM T WHERE a >= 5 AND a < 10", _row_dicts(columns)
    )
    assert warm.rows()[0][0] == expected
    again = cluster.query("SELECT COUNT(*) FROM T WHERE a >= 5 AND NOT (a >= 10)")
    assert again.rows()[0][0] == expected
