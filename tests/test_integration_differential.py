"""Differential testing: the distributed engine vs. a naive reference.

The reference interpreter lives in :mod:`_oracle` (shared with the soak
test and the chaos matrix); queries here are generated randomly across
the dialect's feature space and must match it exactly (modulo float
tolerance and row order for unordered queries).
"""

import random

import pytest

from tests._oracle import _match, _row_dicts, reference_execute

# -- query generation -----------------------------------------------------------



def _random_join_query(rng):
    """Star-schema joins against the D dimension (c2, label, weight)."""
    preds = []
    if rng.random() < 0.7:
        preds.append(f"c1 < {rng.randint(10, 100)}")
    if rng.random() < 0.4:
        preds.append(f"weight > 0.{rng.randint(1, 8)}")
    where = (" WHERE " + " AND ".join(f"({p})" for p in preds)) if preds else ""
    shape = rng.random()
    if shape < 0.5:
        return (
            f"SELECT label AS g, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2{where} "
            "GROUP BY g ORDER BY g"
        )
    return (
        f"SELECT SUM(weight) AS w, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2{where}"
    )


def _random_query(rng):
    preds = []
    for _ in range(rng.randint(0, 3)):
        kind = rng.random()
        if kind < 0.55:
            col = rng.choice(["c1", "c2"])
            op = rng.choice([">", ">=", "<", "<=", "=", "!="])
            preds.append(f"{col} {op} {rng.randint(0, 12 if col == 'c2' else 100)}")
        elif kind < 0.75:
            preds.append(f"url CONTAINS 'site{rng.randint(0, 8)}'")
        elif kind < 0.9:
            preds.append(f"NOT (c2 > {rng.randint(0, 9)})")
        else:
            preds.append(
                f"c1 < {rng.randint(0, 100)} OR c2 = {rng.randint(0, 9)}"
            )
    where = (" WHERE " + " AND ".join(f"({p})" for p in preds)) if preds else ""
    shape = rng.random()
    if shape < 0.4:
        agg = rng.choice(["COUNT(*)", "SUM(c1)", "AVG(clicks)", "MIN(c1)", "MAX(c2)"])
        return f"SELECT {agg} AS v FROM T{where}"
    if shape < 0.75:
        return (
            f"SELECT c2 AS k, COUNT(*) AS n FROM T{where} "
            f"GROUP BY k ORDER BY k LIMIT {rng.randint(1, 12)}"
        )
    return f"SELECT c1 AS a, c2 AS b FROM T{where} ORDER BY a, b LIMIT {rng.randint(1, 40)}"


@pytest.mark.parametrize("seed", range(8))
def test_random_queries_match_reference(small_cluster, seed):
    rng = random.Random(seed)
    rows = _row_dicts(small_cluster._test_columns)
    for _ in range(6):
        sql = _random_query(rng)
        expected = reference_execute(sql, rows)
        got = small_cluster.query(sql).rows()
        assert len(got) == len(expected), sql
        for row_a, row_b in zip(got, expected):
            assert len(row_a) == len(row_b), sql
            for a, b in zip(row_a, row_b):
                assert _match(a, b), (sql, row_a, row_b)


@pytest.mark.parametrize("seed", range(4))
def test_random_join_queries_match_reference(small_cluster, seed):
    rng = random.Random(100 + seed)
    rows = _row_dicts(small_cluster._test_columns)
    dim_rows = _row_dicts(small_cluster._test_dim)
    for _ in range(4):
        sql = _random_join_query(rng)
        expected = reference_execute(sql, rows, join_tables={"D": dim_rows})
        got = small_cluster.query(sql).rows()
        assert len(got) == len(expected), sql
        for row_a, row_b in zip(got, expected):
            for a, b in zip(row_a, row_b):
                assert _match(a, b), (sql, row_a, row_b)


def test_sum_with_nulls_matches(small_cluster):
    # a filter matching nothing: SUM -> NULL semantics at the edge
    r = small_cluster.query("SELECT COUNT(*) n FROM T WHERE c1 > 10000")
    assert r.rows() == [(0,)]
