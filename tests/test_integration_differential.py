"""Differential testing: the distributed engine vs. a naive reference.

The reference interpreter lives in :mod:`_oracle` (shared with the soak
test and the chaos matrix); queries here are generated randomly across
the dialect's feature space and must match it exactly (modulo float
tolerance and row order for unordered queries).

A second differential axis pits the fused morsel pipeline (S51,
``LeafConfig.enable_fused_pipelines``) against the operator-at-a-time
executor on twin clusters loaded with identical data: every query must
return byte-identical results AND identical modeled cost accounting
(``response_time_s``, ``io_bytes_modeled``), which is what lets the
committed figure results stay unchanged when the flag is flipped.
"""

import random

import numpy as np
import pytest

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.cluster.node import LeafConfig
from tests._oracle import _match, _row_dicts, reference_execute
from tests.conftest import CLICKS_SCHEMA, make_clicks_columns

# -- query generation -----------------------------------------------------------



def _random_join_query(rng):
    """Star-schema joins against the D dimension (c2, label, weight)."""
    preds = []
    if rng.random() < 0.7:
        preds.append(f"c1 < {rng.randint(10, 100)}")
    if rng.random() < 0.4:
        preds.append(f"weight > 0.{rng.randint(1, 8)}")
    where = (" WHERE " + " AND ".join(f"({p})" for p in preds)) if preds else ""
    shape = rng.random()
    if shape < 0.5:
        return (
            f"SELECT label AS g, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2{where} "
            "GROUP BY g ORDER BY g"
        )
    return (
        f"SELECT SUM(weight) AS w, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2{where}"
    )


def _random_query(rng):
    preds = []
    for _ in range(rng.randint(0, 3)):
        kind = rng.random()
        if kind < 0.55:
            col = rng.choice(["c1", "c2"])
            op = rng.choice([">", ">=", "<", "<=", "=", "!="])
            preds.append(f"{col} {op} {rng.randint(0, 12 if col == 'c2' else 100)}")
        elif kind < 0.75:
            preds.append(f"url CONTAINS 'site{rng.randint(0, 8)}'")
        elif kind < 0.9:
            preds.append(f"NOT (c2 > {rng.randint(0, 9)})")
        else:
            preds.append(
                f"c1 < {rng.randint(0, 100)} OR c2 = {rng.randint(0, 9)}"
            )
    where = (" WHERE " + " AND ".join(f"({p})" for p in preds)) if preds else ""
    shape = rng.random()
    if shape < 0.4:
        agg = rng.choice(["COUNT(*)", "SUM(c1)", "AVG(clicks)", "MIN(c1)", "MAX(c2)"])
        return f"SELECT {agg} AS v FROM T{where}"
    if shape < 0.75:
        return (
            f"SELECT c2 AS k, COUNT(*) AS n FROM T{where} "
            f"GROUP BY k ORDER BY k LIMIT {rng.randint(1, 12)}"
        )
    return f"SELECT c1 AS a, c2 AS b FROM T{where} ORDER BY a, b LIMIT {rng.randint(1, 40)}"


@pytest.mark.parametrize("seed", range(8))
def test_random_queries_match_reference(small_cluster, seed):
    rng = random.Random(seed)
    rows = _row_dicts(small_cluster._test_columns)
    for _ in range(6):
        sql = _random_query(rng)
        expected = reference_execute(sql, rows)
        got = small_cluster.query(sql).rows()
        assert len(got) == len(expected), sql
        for row_a, row_b in zip(got, expected):
            assert len(row_a) == len(row_b), sql
            for a, b in zip(row_a, row_b):
                assert _match(a, b), (sql, row_a, row_b)


@pytest.mark.parametrize("seed", range(4))
def test_random_join_queries_match_reference(small_cluster, seed):
    rng = random.Random(100 + seed)
    rows = _row_dicts(small_cluster._test_columns)
    dim_rows = _row_dicts(small_cluster._test_dim)
    for _ in range(4):
        sql = _random_join_query(rng)
        expected = reference_execute(sql, rows, join_tables={"D": dim_rows})
        got = small_cluster.query(sql).rows()
        assert len(got) == len(expected), sql
        for row_a, row_b in zip(got, expected):
            for a, b in zip(row_a, row_b):
                assert _match(a, b), (sql, row_a, row_b)


def test_sum_with_nulls_matches(small_cluster):
    # a filter matching nothing: SUM -> NULL semantics at the edge
    r = small_cluster.query("SELECT COUNT(*) n FROM T WHERE c1 > 10000")
    assert r.rows() == [(0,)]


# -- fused-vs-unfused differential (S51) ----------------------------------------


def _twin(enable_fused: bool) -> FeisuCluster:
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            leaf=LeafConfig(enable_fused_pipelines=enable_fused),
        )
    )
    columns = make_clicks_columns()
    cluster.load_table("T", CLICKS_SCHEMA, columns, storage="storage-a", block_rows=1500)
    dim = {
        "c2": np.arange(10),
        "label": np.array([f"grp{i}" for i in range(10)], dtype=object),
        "weight": np.linspace(0.1, 1.0, 10),
    }
    cluster.load_table(
        "D",
        Schema.of(c2=DataType.INT64, label=DataType.STRING, weight=DataType.FLOAT64),
        dim,
        storage="storage-b",
        block_rows=100,
    )
    return cluster


@pytest.fixture(scope="module")
def fused_twins():
    """Identical data, one cluster per executor mode."""
    return _twin(enable_fused=False), _twin(enable_fused=True)


#: Figure-shaped queries (the workloads behind the committed results)
#: plus edge shapes: empty matches, full scans, negation, OR residuals.
FUSED_DIFFERENTIAL_QUERIES = [
    "SELECT COUNT(*) AS n FROM T WHERE c1 > 50",
    "SELECT COUNT(*) AS n FROM T WHERE url CONTAINS 'site3'",
    "SELECT province, COUNT(*) AS n, SUM(c1) AS s FROM T "
    "WHERE c2 < 7 GROUP BY province ORDER BY province",
    "SELECT c2 AS k, AVG(clicks) AS a FROM T WHERE c1 >= 20 "
    "GROUP BY k ORDER BY a DESC LIMIT 5",
    "SELECT c1, c2, url FROM T WHERE c1 < 15 AND c2 = 3 ORDER BY c1, url LIMIT 25",
    "SELECT label AS g, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2 "
    "WHERE c1 < 40 GROUP BY g ORDER BY g",
    "SELECT SUM(weight) AS w FROM T LEFT JOIN D ON T.c2 = D.c2 WHERE c1 > 90",
    "SELECT c2 AS k, COUNT(*) AS n FROM T GROUP BY k "
    "HAVING COUNT(*) > 100 ORDER BY k",
    "SELECT MIN(c1) AS lo, MAX(c1) AS hi, SUM(c2) AS s FROM T",
    "SELECT COUNT(*) AS n FROM T WHERE c1 > 10000",
    "SELECT COUNT(*) AS n FROM T WHERE NOT (url CONTAINS 'site1') AND c2 <= 4",
    "SELECT c1 AS a FROM T WHERE c1 < 3 OR c2 = 9 ORDER BY a LIMIT 50",
]


def _assert_results_identical(unfused, fused, sql):
    assert fused.columns == unfused.columns, sql
    assert fused.rows() == unfused.rows(), sql
    for key in ("response_time_s", "io_bytes_modeled", "index_full_covers",
                "index_clause_hits"):
        assert fused.stats[key] == unfused.stats[key], (sql, key)


@pytest.mark.parametrize("sql", FUSED_DIFFERENTIAL_QUERIES)
def test_fused_matches_unfused(fused_twins, sql):
    unfused_cluster, fused_cluster = fused_twins
    # Two rounds: the second runs index-covered (SmartIndex entries were
    # fed by round one), so both the cold and covered paths are pinned.
    for _ in range(2):
        _assert_results_identical(
            unfused_cluster.query(sql), fused_cluster.query(sql), sql
        )


@pytest.mark.parametrize("seed", range(4))
def test_fused_matches_unfused_random(fused_twins, seed):
    unfused_cluster, fused_cluster = fused_twins
    rng = random.Random(1000 + seed)
    for _ in range(5):
        sql = _random_query(rng)
        _assert_results_identical(
            unfused_cluster.query(sql), fused_cluster.query(sql), sql
        )
