"""CNF conversion and canonical predicates — SmartIndex's foundation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.planner.cnf import (
    AtomicPredicate,
    ConjunctiveForm,
    extract_atom,
    to_cnf,
    to_nnf,
)
from repro.planner.expressions import Frame, evaluate
from repro.sql.ast import BinaryOperator
from repro.sql.parser import parse_expression


def _cnf(text) -> ConjunctiveForm:
    return to_cnf(parse_expression(text))


# -- atoms -------------------------------------------------------------------


def test_extract_atom_simple():
    atom = extract_atom(parse_expression("c2 > 5"))
    assert atom == AtomicPredicate("c2", BinaryOperator.GT, 5)
    assert atom.key == "c2 > 5"


def test_extract_atom_flipped_literal_side():
    atom = extract_atom(parse_expression("5 < c2"))
    assert atom == AtomicPredicate("c2", BinaryOperator.GT, 5)
    # textual variants share one canonical key — the reuse property
    assert atom.key == extract_atom(parse_expression("c2 > 5")).key


def test_extract_atom_negative_literal():
    atom = extract_atom(parse_expression("x >= -3"))
    assert atom == AtomicPredicate("x", BinaryOperator.GE, -3)


def test_extract_atom_not_folds_comparison():
    atom = extract_atom(parse_expression("NOT (c2 <= 5)"))
    assert atom == AtomicPredicate("c2", BinaryOperator.GT, 5)


def test_extract_atom_rejects_non_atomic():
    assert extract_atom(parse_expression("a + 1 > 5")) is None
    assert extract_atom(parse_expression("a > b")) is None
    assert extract_atom(parse_expression("a > 1 AND b > 2")) is None


def test_contains_atom_and_negation_flag():
    atom = extract_atom(parse_expression("url CONTAINS 'x'"))
    assert atom.op is BinaryOperator.CONTAINS and not atom.negated
    neg = extract_atom(parse_expression("NOT (url CONTAINS 'x')"))
    assert neg.negated and neg.base == atom


def test_complement_pairs():
    gt = AtomicPredicate("c", BinaryOperator.GT, 5)
    assert gt.complement() == AtomicPredicate("c", BinaryOperator.LE, 5)
    assert gt.complement().complement() == gt
    eq = AtomicPredicate("c", BinaryOperator.EQ, 5)
    assert eq.complement().op is BinaryOperator.NE
    ct = AtomicPredicate("s", BinaryOperator.CONTAINS, "x")
    assert ct.complement().negated and ct.complement().complement() == ct


def test_negated_flag_only_for_contains():
    with pytest.raises(PlanError):
        AtomicPredicate("c", BinaryOperator.GT, 5, negated=True)


def test_atom_evaluate_matches_numpy():
    values = np.array([1, 5, 6, 10])
    assert (
        AtomicPredicate("c", BinaryOperator.GT, 5).evaluate(values) == (values > 5)
    ).all()
    assert (
        AtomicPredicate("c", BinaryOperator.NE, 5).evaluate(values) == (values != 5)
    ).all()


def test_atom_evaluate_contains():
    s = np.empty(3, dtype=object)
    s[:] = ["abc", "bcd", "xyz"]
    atom = AtomicPredicate("s", BinaryOperator.CONTAINS, "bc")
    assert list(atom.evaluate(s)) == [True, True, False]
    assert list(atom.complement().evaluate(s)) == [False, False, True]


# -- CNF structure -------------------------------------------------------------


def test_cnf_of_conjunction_two_clauses():
    cnf = _cnf("(a > 1) AND (b < 2)")
    assert len(cnf.clauses) == 2
    assert all(len(c.atoms) == 1 for c in cnf.clauses)
    assert cnf.predicate_keys() == ["a > 1", "b < 2"]


def test_cnf_of_disjunction_single_clause():
    cnf = _cnf("a > 1 OR b < 2")
    assert len(cnf.clauses) == 1
    assert len(cnf.clauses[0].atoms) == 2
    assert cnf.clauses[0].is_indexable


def test_cnf_distribution():
    cnf = _cnf("a = 1 OR (b = 2 AND c = 3)")
    # (a=1 OR b=2) AND (a=1 OR c=3)
    assert len(cnf.clauses) == 2
    assert all(len(c.atoms) == 2 for c in cnf.clauses)


def test_cnf_de_morgan():
    cnf = _cnf("NOT (a > 1 OR b > 2)")
    assert len(cnf.clauses) == 2
    keys = set(cnf.predicate_keys())
    assert keys == {"a <= 1", "b <= 2"}


def test_cnf_paper_q10_q11_same_keys():
    # Fig 7: Q10 `c2 > 0 AND c2 <= 5` vs Q11 `c2 > 0 AND NOT (c2 > 5)`
    q10 = set(_cnf("(c2 > 0) AND (c2 <= 5)").predicate_keys())
    q11 = set(_cnf("(c2 > 0) AND NOT (c2 > 5)").predicate_keys())
    assert q10 == q11


def test_cnf_residual_for_non_atomic():
    cnf = _cnf("a + 1 > 5 AND b = 2")
    indexable = cnf.indexable_clauses
    assert len(indexable) == 1
    assert indexable[0].atoms[0].key == "b = 2"
    residual = [c for c in cnf.clauses if not c.is_indexable]
    assert len(residual) == 1


def test_cnf_none_is_empty():
    assert to_cnf(None).clauses == []


def test_cnf_dedupes_identical_clauses():
    cnf = _cnf("a > 1 AND a > 1")
    assert len(cnf.clauses) == 1


def test_clause_columns():
    cnf = _cnf("a > 1 OR b < 2")
    assert cnf.clauses[0].columns == ("a", "b")


def test_cnf_to_expr_round_trip_semantics():
    frame = Frame.from_columns(
        {"a": np.array([0, 1, 2, 3]), "b": np.array([3, 2, 1, 0])}
    )
    text = "(a > 1 AND b < 2) OR (a = 0 AND NOT (b <= 2))"
    original = evaluate(parse_expression(text), frame)
    rebuilt = evaluate(to_cnf(parse_expression(text)).to_expr(), frame)
    assert (original == rebuilt).all()


# -- property: CNF preserves semantics -------------------------------------------


@st.composite
def bool_exprs(draw, depth=0):
    """Random boolean expressions over int columns a, b."""
    if depth > 3 or draw(st.booleans()):
        col = draw(st.sampled_from(["a", "b"]))
        op = draw(st.sampled_from([">", ">=", "<", "<=", "=", "!="]))
        val = draw(st.integers(min_value=-3, max_value=3))
        return f"({col} {op} {val})"
    kind = draw(st.sampled_from(["AND", "OR", "NOT"]))
    if kind == "NOT":
        return f"(NOT {draw(bool_exprs(depth + 1))})"
    return f"({draw(bool_exprs(depth + 1))} {kind} {draw(bool_exprs(depth + 1))})"


@settings(max_examples=120, deadline=None)
@given(bool_exprs())
def test_property_cnf_equivalent_to_original(text):
    rng = np.random.default_rng(0)
    frame = Frame.from_columns(
        {
            "a": rng.integers(-4, 5, 64),
            "b": rng.integers(-4, 5, 64),
        }
    )
    expr = parse_expression(text)
    original = evaluate(expr, frame).astype(bool)
    cnf = to_cnf(expr)
    rebuilt_expr = cnf.to_expr()
    rebuilt = (
        np.ones(64, dtype=bool) if rebuilt_expr is None else evaluate(rebuilt_expr, frame).astype(bool)
    )
    assert (original == rebuilt).all()


@settings(max_examples=120, deadline=None)
@given(bool_exprs())
def test_property_nnf_equivalent_to_original(text):
    rng = np.random.default_rng(1)
    frame = Frame.from_columns(
        {"a": rng.integers(-4, 5, 64), "b": rng.integers(-4, 5, 64)}
    )
    expr = parse_expression(text)
    assert (
        evaluate(expr, frame).astype(bool) == evaluate(to_nnf(expr), frame).astype(bool)
    ).all()


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from(["a", "b"]),
    st.sampled_from([">", ">=", "<", "<=", "=", "!="]),
    st.integers(min_value=-3, max_value=3),
)
def test_property_complement_is_bitwise_not(col, op, val):
    rng = np.random.default_rng(2)
    values = rng.integers(-4, 5, 100)
    atom = extract_atom(parse_expression(f"{col} {op} {val}"))
    assert (atom.complement().evaluate(values) == ~atom.evaluate(values)).all()
