"""Storage substrates: namespaces, placement policies, service profiles."""

import pytest

from repro.errors import PathError, StorageError
from repro.sim.netmodel import NodeAddress, TopologySpec
from repro.storage.systems import DistributedFS, FatmanFS, KeyValueStore, LocalFS

SPEC = TopologySpec(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4)
NODES = SPEC.addresses()


def test_localfs_requires_node_and_single_replica():
    fs = LocalFS(NODES)
    with pytest.raises(StorageError, match="producing node"):
        fs.write("/a", b"x")
    fs.write("/a", b"x", node=NODES[3])
    assert fs.locations("/a") == [NODES[3]]
    assert fs.read("/a") == b"x"


def test_localfs_rejects_foreign_node():
    fs = LocalFS(NODES[:2])
    with pytest.raises(StorageError):
        fs.write("/a", b"x", node=NODES[5])


def test_paths_must_be_absolute():
    fs = LocalFS(NODES)
    with pytest.raises(PathError):
        fs.write("relative", b"x", node=NODES[0])


def test_read_missing_path():
    fs = DistributedFS(NODES)
    with pytest.raises(PathError):
        fs.read("/missing")
    with pytest.raises(PathError):
        fs.locations("/missing")
    with pytest.raises(PathError):
        fs.delete("/missing")


def test_hdfs_three_replicas_rack_aware():
    fs = DistributedFS(NODES, seed=3)
    fs.write("/f", b"data", node=NODES[0])
    replicas = fs.locations("/f")
    assert len(replicas) == 3
    assert replicas[0] == NODES[0]  # writer-local first replica
    assert len(set(replicas)) == 3
    # second replica shares the writer's rack, third does not
    same_rack = [
        r for r in replicas[1:] if (r.datacenter, r.rack) == (NODES[0].datacenter, NODES[0].rack)
    ]
    other_rack = [
        r for r in replicas[1:] if (r.datacenter, r.rack) != (NODES[0].datacenter, NODES[0].rack)
    ]
    assert len(same_rack) == 1 and len(other_rack) == 1


def test_hdfs_degrades_on_tiny_cluster():
    two = NODES[:2]
    fs = DistributedFS(two)
    fs.write("/f", b"x")
    assert 1 <= len(fs.locations("/f")) <= 2


def test_fatman_replicas_span_datacenters():
    fs = FatmanFS(NODES, seed=9)
    fs.write("/cold", b"archive")
    replicas = fs.locations("/cold")
    assert len(replicas) == 2
    assert replicas[0].datacenter != replicas[1].datacenter


def test_fatman_profile_is_cold():
    fs = FatmanFS(NODES)
    assert fs.profile.first_byte_latency_s > 0.1
    assert fs.profile.tasks_per_node == 1


def test_kv_store_stable_placement():
    kv = KeyValueStore(NODES)
    kv.put("label1", b"v1")
    first = kv.locations("/label1")
    kv2 = KeyValueStore(NODES)
    kv2.put("label1", b"v1")
    assert kv2.locations("/label1") == first  # hash placement is stable
    assert kv.get("label1") == b"v1"


def test_drop_replica_and_overwrite():
    fs = DistributedFS(NODES)
    fs.write("/f", b"1")
    replicas = fs.locations("/f")
    fs.drop_replica("/f", replicas[0])
    assert len(fs.locations("/f")) == len(replicas) - 1
    fs.write("/f", b"22")  # overwrite re-places
    assert fs.read("/f") == b"22"


def test_list_paths_and_totals():
    fs = DistributedFS(NODES)
    fs.write("/t/a", b"xx")
    fs.write("/t/b", b"yyy")
    fs.write("/u/c", b"z")
    assert fs.list_paths("/t/") == ["/t/a", "/t/b"]
    assert fs.total_bytes == 6
    fs.delete("/t/a")
    assert not fs.exists("/t/a")


def test_size_reporting():
    fs = DistributedFS(NODES)
    fs.write("/f", b"12345")
    assert fs.size("/f") == 5
