"""Bloom filter behaviour: no false negatives, bounded false positives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.bloom import BloomFilter
from repro.errors import StorageError


def test_no_false_negatives():
    bf = BloomFilter(expected_items=100)
    items = [f"key{i}" for i in range(100)]
    bf.update(items)
    assert all(bf.might_contain(x) for x in items)


def test_false_positive_rate_reasonable():
    bf = BloomFilter(expected_items=1000, false_positive_rate=0.01)
    bf.update(f"in{i}" for i in range(1000))
    fp = sum(bf.might_contain(f"out{i}") for i in range(5000))
    assert fp / 5000 < 0.05  # generous bound over the 1% design point


def test_empty_filter_contains_nothing_probably():
    bf = BloomFilter(expected_items=10)
    assert not bf.might_contain("anything")


def test_invalid_rate_rejected():
    with pytest.raises(StorageError):
        BloomFilter(10, false_positive_rate=1.5)


def test_serialization_round_trip():
    bf = BloomFilter(expected_items=50)
    bf.update(["a", "b", "c"])
    back = BloomFilter.from_bytes(bf.to_bytes())
    assert back.might_contain("a") and back.might_contain("c")
    assert back.num_bits == bf.num_bits and back.num_hashes == bf.num_hashes


def test_handles_non_string_values():
    bf = BloomFilter(expected_items=10)
    bf.add(42)
    bf.add(3.14)
    assert bf.might_contain(42) and bf.might_contain(3.14)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.text(max_size=20), max_size=80))
def test_property_membership_after_insert(items):
    bf = BloomFilter(expected_items=max(len(items), 1))
    bf.update(items)
    assert all(bf.might_contain(x) for x in items)
