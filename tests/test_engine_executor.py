"""Leaf-task execution and master finalization, in isolation."""

import numpy as np
import pytest

from repro.columnar.schema import DataType, Schema
from repro.columnar.table import Catalog
from repro.engine.executor import execute_scan_task, finalize
from repro.index.btree import BPlusTree
from repro.index.smartindex import SmartIndexManager
from repro.planner.expressions import Frame
from repro.planner.physical import build_plan
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.storage.loader import load_block, read_table_frame, store_table
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS
from repro.sim.netmodel import TopologySpec

N = 5000


@pytest.fixture(scope="module")
def env():
    nodes = TopologySpec(1, 1, 4).addresses()
    hdfs = DistributedFS(nodes)
    router = StorageRouter()
    router.register(hdfs, default=True)
    catalog = Catalog()
    rng = np.random.default_rng(9)
    columns = {
        "c1": rng.integers(0, 100, N),
        "c2": rng.integers(0, 10, N),
        "url": np.array([f"http://s{i % 6}.com/p{i % 11}" for i in range(N)], dtype=object),
        "clicks": rng.random(N),
    }
    schema = Schema.of(
        c1=DataType.INT64, c2=DataType.INT64, url=DataType.STRING, clicks=DataType.FLOAT64
    )
    store_table("T", schema, columns, router, hdfs, block_rows=1024, catalog=catalog)
    dim = {
        "c2": np.arange(10, dtype=np.int64),
        "label": np.array([f"g{i}" for i in range(10)], dtype=object),
    }
    store_table(
        "D", Schema.of(c2=DataType.INT64, label=DataType.STRING), dim, router, hdfs, catalog=catalog
    )
    return router, catalog, columns


def run_query(env, sql, index_manager=None, btree_provider=None, now=0.0):
    router, catalog, _ = env
    plan = build_plan(analyze(parse(sql), catalog))
    broadcasts = {}
    for bc in plan.broadcasts:
        table = catalog.get(bc.table_name)
        broadcasts[bc.binding] = Frame.from_columns(
            read_table_frame(router, table, list(bc.columns))
        )
    results = [
        execute_scan_task(
            task,
            plan,
            load_block(router, task.block),
            broadcasts,
            index_manager=index_manager,
            btree_provider=btree_provider,
            now=now,
        )
        for task in plan.tasks
    ]
    return finalize(plan, results), results


def test_count_star_no_filter(env):
    result, _ = run_query(env, "SELECT COUNT(*) FROM T")
    assert result.rows() == [(N,)]


def test_projection_no_filter(env):
    result, _ = run_query(env, "SELECT c1 FROM T")
    _, _, columns = env
    assert result.num_rows == N
    assert (result.column("c1") == columns["c1"]).all()


def test_filter_counts_match_numpy(env):
    _, _, columns = env
    result, _ = run_query(env, "SELECT COUNT(*) FROM T WHERE c2 >= 7")
    assert result.rows()[0][0] == int((columns["c2"] >= 7).sum())


def test_or_filter(env):
    _, _, columns = env
    result, _ = run_query(env, "SELECT COUNT(*) FROM T WHERE c2 = 1 OR c1 < 10")
    expected = int(((columns["c2"] == 1) | (columns["c1"] < 10)).sum())
    assert result.rows()[0][0] == expected


def test_contains_filter(env):
    _, _, columns = env
    result, _ = run_query(env, "SELECT COUNT(*) FROM T WHERE url CONTAINS 's3.com'")
    expected = sum("s3.com" in u for u in columns["url"])
    assert result.rows()[0][0] == expected


def test_group_by_with_having_order_limit(env):
    _, _, columns = env
    result, _ = run_query(
        env,
        "SELECT c2, COUNT(*) AS n FROM T GROUP BY c2 HAVING COUNT(*) > 0 "
        "ORDER BY n DESC, c2 ASC LIMIT 4",
    )
    counts = np.bincount(columns["c2"])
    expected = sorted(
        [(int(v), int(c)) for v, c in enumerate(counts)], key=lambda p: (-p[1], p[0])
    )[:4]
    assert result.rows() == expected


def test_avg_and_sum_accuracy(env):
    _, _, columns = env
    result, _ = run_query(env, "SELECT SUM(clicks) s, AVG(clicks) a FROM T WHERE c2 = 3")
    mask = columns["c2"] == 3
    assert result.rows()[0][0] == pytest.approx(float(columns["clicks"][mask].sum()))
    assert result.rows()[0][1] == pytest.approx(float(columns["clicks"][mask].mean()))


def test_arithmetic_in_select(env):
    result, _ = run_query(env, "SELECT MAX(c1 * 2 + 1) m FROM T")
    _, _, columns = env
    assert result.rows()[0][0] == int(columns["c1"].max() * 2 + 1)


def test_join_group_by(env):
    _, _, columns = env
    result, _ = run_query(
        env,
        "SELECT label, COUNT(*) n FROM T JOIN D ON T.c2 = D.c2 GROUP BY label ORDER BY label",
    )
    counts = np.bincount(columns["c2"], minlength=10)
    expected = [(f"g{i}", int(counts[i])) for i in range(10) if counts[i] > 0]
    assert result.rows() == expected


def test_index_full_cover_second_run(env):
    mgr = SmartIndexManager()
    sql = "SELECT COUNT(*) FROM T WHERE c2 > 2 AND c2 <= 7"
    r1, res1 = run_query(env, sql, index_manager=mgr)
    r2, res2 = run_query(env, sql, index_manager=mgr, now=1.0)
    assert r1.rows() == r2.rows()
    assert all(not r.report.index_full_cover for r in res1)
    assert all(r.report.index_full_cover for r in res2)
    assert sum(r.report.io_bytes for r in res2) == 0  # COUNT(*): nothing to read


def test_index_cover_with_payload_reads_less(env):
    mgr = SmartIndexManager()
    sql = "SELECT SUM(clicks) FROM T WHERE c2 > 2 AND c2 <= 7"
    _, res1 = run_query(env, sql, index_manager=mgr)
    _, res2 = run_query(env, sql, index_manager=mgr, now=1.0)
    io1 = sum(r.report.io_bytes for r in res1)
    io2 = sum(r.report.io_bytes for r in res2)
    assert 0 < io2 < io1


def test_btree_answers_supported_clauses(env):
    router, catalog, columns = env
    trees = {}

    def provider(block_id, column):
        key = (block_id, column)
        if key not in trees:
            table = catalog.get("T")
            ref = table.block(block_id)
            trees[key] = BPlusTree(load_block(router, ref).column(column))
        return trees[key]

    result, res = run_query(env, "SELECT COUNT(*) FROM T WHERE c2 >= 7", btree_provider=provider)
    assert result.rows()[0][0] == int((columns["c2"] >= 7).sum())
    assert all(r.report.btree_clauses == 1 for r in res)
    assert all(r.report.index_full_cover for r in res)


def test_btree_cannot_answer_contains(env):
    seen = []

    def provider(block_id, column):
        seen.append(column)
        return None

    result, res = run_query(
        env, "SELECT COUNT(*) FROM T WHERE url CONTAINS 's1.com'", btree_provider=provider
    )
    assert all(r.report.btree_clauses == 0 for r in res)


def test_partial_results_ratio(env):
    router, catalog, columns = env
    plan = build_plan(analyze(parse("SELECT COUNT(*) FROM T"), catalog))
    results = [
        execute_scan_task(task, plan, load_block(router, task.block), {})
        for task in plan.tasks[: len(plan.tasks) // 2]
    ]
    result = finalize(plan, results, processed_ratio=0.5)
    assert result.processed_ratio == 0.5
    assert 0 < result.rows()[0][0] < N


def test_empty_result_projection(env):
    result, _ = run_query(env, "SELECT c1, url FROM T WHERE c1 > 10000")
    assert result.num_rows == 0
    assert result.columns == ["c1", "url"]


def test_limit_without_order_pushed_down(env):
    result, res = run_query(env, "SELECT c1 FROM T LIMIT 5")
    assert result.num_rows == 5
    # each task returned at most LIMIT rows
    assert all(r.frame.num_rows <= 5 for r in res)


def test_topk_pushdown_with_order_by(env):
    """Leaves ship at most LIMIT rows when the sort keys are base columns."""
    _, _, columns = env
    result, res = run_query(env, "SELECT c1, clicks FROM T ORDER BY clicks DESC LIMIT 7")
    assert result.num_rows == 7
    assert all(r.frame.num_rows <= 7 for r in res)
    expected = np.sort(columns["clicks"])[::-1][:7]
    assert list(result.column("clicks")) == pytest.approx(list(expected))


def test_topk_pushdown_skipped_for_expression_keys(env):
    result, res = run_query(env, "SELECT c1, clicks FROM T ORDER BY c1 * 2 LIMIT 5")
    assert result.num_rows == 5
    # expression sort keys disable the leaf-side cut, results still correct
    _, _, columns = env
    assert result.rows()[0][0] == int(columns["c1"].min())


def test_topk_pushdown_multi_key_global_order(env):
    _, _, columns = env
    result, _ = run_query(env, "SELECT c2, c1 FROM T ORDER BY c2 ASC, c1 DESC LIMIT 10")
    pairs = sorted(zip(columns["c2"], columns["c1"]), key=lambda p: (p[0], -p[1]))[:10]
    assert result.rows() == [(int(a), int(b)) for a, b in pairs]
