"""B+ tree baseline: structure and query correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.btree import ORDER, BPlusTree
from repro.planner.cnf import AtomicPredicate
from repro.sql.ast import BinaryOperator


def test_search_exact_with_duplicates():
    values = np.array([5, 3, 5, 1, 5, 2], dtype=np.int64)
    tree = BPlusTree(values)
    assert list(tree.search(5)) == [0, 2, 4]
    assert list(tree.search(1)) == [3]
    assert list(tree.search(99)) == []


def test_range_queries():
    values = np.arange(100, dtype=np.int64)[::-1].copy()  # descending input
    tree = BPlusTree(values)
    got = sorted(tree.range(low=10, high=20))
    expected = sorted(np.flatnonzero((values >= 10) & (values <= 20)))
    assert got == expected
    assert len(tree.range(low=10, high=20, low_inclusive=False, high_inclusive=False)) == 9


def test_open_ended_ranges():
    values = np.array([4, 8, 15, 16, 23, 42], dtype=np.int64)
    tree = BPlusTree(values)
    assert sorted(tree.range(low=16)) == [3, 4, 5]
    assert sorted(tree.range(high=15)) == [0, 1, 2]
    assert sorted(tree.range()) == [0, 1, 2, 3, 4, 5]


def test_multi_level_structure():
    n = ORDER * ORDER + 10  # forces height >= 3
    values = np.random.default_rng(0).permutation(n).astype(np.int64)
    tree = BPlusTree(values)
    assert tree.height >= 3
    assert list(tree.search(0)) == [int(np.flatnonzero(values == 0)[0])]
    assert len(tree.range(low=0, high=n)) == n


def test_string_keys():
    values = np.empty(4, dtype=object)
    values[:] = ["banana", "apple", "cherry", "apple"]
    tree = BPlusTree(values)
    assert list(tree.search("apple")) == [1, 3]
    assert sorted(tree.range(low="b")) == [0, 2]


def test_supports_and_evaluate_atoms():
    values = np.array([1, 5, 5, 9], dtype=np.int64)
    tree = BPlusTree(values)
    eq = AtomicPredicate("c", BinaryOperator.EQ, 5)
    assert tree.supports(eq)
    assert list(tree.evaluate(eq)) == [False, True, True, False]
    for op, expected in [
        (BinaryOperator.GT, [False, False, False, True]),
        (BinaryOperator.GE, [False, True, True, True]),
        (BinaryOperator.LT, [True, False, False, False]),
        (BinaryOperator.LE, [True, True, True, False]),
    ]:
        atom = AtomicPredicate("c", op, 5)
        assert list(tree.evaluate(atom)) == expected


def test_contains_and_ne_unsupported():
    tree = BPlusTree(np.array([1, 2], dtype=np.int64))
    contains = AtomicPredicate("c", BinaryOperator.CONTAINS, "x")
    ne = AtomicPredicate("c", BinaryOperator.NE, 1)
    assert not tree.supports(contains)
    assert not tree.supports(ne)
    with pytest.raises(IndexError_):
        tree.evaluate(ne)


def test_empty_tree():
    tree = BPlusTree(np.array([], dtype=np.int64))
    assert list(tree.search(1)) == []
    assert list(tree.range()) == []


def test_nbytes_positive():
    tree = BPlusTree(np.arange(1000, dtype=np.int64))
    assert tree.nbytes() > 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(-20, 20), min_size=1, max_size=300),
    st.integers(-25, 25),
    st.integers(-25, 25),
)
def test_property_range_matches_numpy(values, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    arr = np.array(values, dtype=np.int64)
    tree = BPlusTree(arr)
    got = np.zeros(len(arr), dtype=bool)
    got[tree.range(low=lo, high=hi)] = True
    expected = (arr >= lo) & (arr <= hi)
    assert (got == expected).all()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-10, 10), min_size=1, max_size=200), st.integers(-12, 12))
def test_property_atom_evaluation_matches_direct(values, threshold):
    arr = np.array(values, dtype=np.int64)
    tree = BPlusTree(arr)
    for op in (BinaryOperator.EQ, BinaryOperator.LT, BinaryOperator.LE,
               BinaryOperator.GT, BinaryOperator.GE):
        atom = AtomicPredicate("c", op, threshold)
        assert (tree.evaluate(atom) == atom.evaluate(arr)).all()
