"""Semantic analysis: binding, typing, grouping rules."""

import numpy as np
import pytest

from repro.columnar.schema import DataType, Schema
from repro.columnar.table import Catalog, Table
from repro.errors import AnalysisError
from repro.sql.analyzer import analyze
from repro.sql.parser import parse


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(
        Table(
            "T",
            Schema.of(
                a=DataType.INT64,
                b=DataType.FLOAT64,
                s=DataType.STRING,
                flag=DataType.BOOL,
            ),
        )
    )
    cat.register(Table("D", Schema.of(a=DataType.INT64, label=DataType.STRING)))
    cat.register(Table("J", Schema.of(k=DataType.INT64, v=DataType.FLOAT64)))
    nested = Table("L", Schema.of(**{"x": DataType.INT64}))
    cat.register(nested)
    return cat


def _an(catalog, sql):
    return analyze(parse(sql), catalog)


def test_simple_binding_and_output_schema(catalog):
    a = _an(catalog, "SELECT a, s FROM T")
    assert a.output_names == ["a", "s"]
    assert a.output_schema.field("a").dtype is DataType.INT64
    assert a.output_schema.field("s").dtype is DataType.STRING
    assert not a.is_aggregate


def test_unknown_table(catalog):
    with pytest.raises(Exception):
        _an(catalog, "SELECT a FROM Missing")


def test_unknown_column(catalog):
    with pytest.raises(AnalysisError, match="unknown column"):
        _an(catalog, "SELECT nope FROM T")


def test_ambiguous_column_across_tables(catalog):
    with pytest.raises(AnalysisError, match="ambiguous"):
        _an(catalog, "SELECT a FROM T JOIN D ON T.a = D.a")


def test_qualified_disambiguation(catalog):
    a = _an(catalog, "SELECT T.a FROM T JOIN D ON T.a = D.a")
    res = a.resolve(a.output_exprs[0])
    assert res.binding == "T"


def test_star_expansion_single_table(catalog):
    a = _an(catalog, "SELECT * FROM T")
    assert a.output_names == ["a", "b", "s", "flag"]


def test_star_expansion_join_qualifies(catalog):
    a = _an(catalog, "SELECT * FROM T JOIN J ON a = k")
    assert "T.a" in a.output_names and "J.k" in a.output_names


def test_star_must_be_alone(catalog):
    with pytest.raises(AnalysisError, match="only select item"):
        _an(catalog, "SELECT *, a FROM T")


def test_duplicate_alias_rejected(catalog):
    with pytest.raises(AnalysisError, match="duplicate output"):
        _an(catalog, "SELECT a AS x, b AS x FROM T")


def test_duplicate_table_binding_rejected(catalog):
    with pytest.raises(AnalysisError, match="duplicate table binding"):
        _an(catalog, "SELECT T.a FROM T JOIN T ON T.a = T.a")


def test_aggregate_output_types(catalog):
    a = _an(catalog, "SELECT COUNT(*) c, SUM(a) s, AVG(a) g, MIN(b) lo, MAX(s) hi FROM T")
    t = {n: f.dtype for n, f in zip(a.output_names, a.output_schema)}
    assert t["c"] is DataType.INT64
    assert t["s"] is DataType.INT64
    assert t["g"] is DataType.FLOAT64
    assert t["lo"] is DataType.FLOAT64
    assert t["hi"] is DataType.STRING


def test_sum_requires_numeric(catalog):
    with pytest.raises(AnalysisError, match="numeric"):
        _an(catalog, "SELECT SUM(s) FROM T")


def test_ungrouped_column_with_aggregate_rejected(catalog):
    with pytest.raises(AnalysisError, match="neither aggregated nor"):
        _an(catalog, "SELECT a, COUNT(*) FROM T")


def test_group_by_makes_column_legal(catalog):
    a = _an(catalog, "SELECT a, COUNT(*) FROM T GROUP BY a")
    assert a.is_aggregate and len(a.group_keys) == 1


def test_group_by_alias(catalog):
    a = _an(catalog, "SELECT a + 1 AS bucket, COUNT(*) FROM T GROUP BY bucket")
    assert len(a.group_keys) == 1


def test_within_folds_into_group_keys(catalog):
    a = _an(catalog, "SELECT SUM(b) WITHIN a FROM T")
    assert len(a.group_keys) == 1
    assert a.is_aggregate


def test_nested_aggregate_rejected(catalog):
    with pytest.raises(AnalysisError, match="nested aggregate"):
        _an(catalog, "SELECT SUM(COUNT(*)) FROM T")  # noqa: parsing allows, analysis rejects


def test_aggregate_in_where_rejected(catalog):
    with pytest.raises(AnalysisError, match="HAVING"):
        _an(catalog, "SELECT a FROM T WHERE COUNT(*) > 1")


def test_having_without_grouping_rejected(catalog):
    with pytest.raises(AnalysisError, match="HAVING requires"):
        _an(catalog, "SELECT a FROM T HAVING a > 1")


def test_having_aggregate_collected(catalog):
    a = _an(catalog, "SELECT a FROM T GROUP BY a HAVING SUM(b) > 1")
    assert any(agg.func == "SUM" for agg in a.aggregates)


def test_where_must_be_boolean(catalog):
    with pytest.raises(AnalysisError, match="boolean"):
        _an(catalog, "SELECT a FROM T WHERE a + 1")


def test_contains_requires_strings(catalog):
    with pytest.raises(AnalysisError, match="CONTAINS"):
        _an(catalog, "SELECT a FROM T WHERE a CONTAINS 'x'")


def test_incomparable_types_rejected(catalog):
    with pytest.raises(AnalysisError):
        _an(catalog, "SELECT a FROM T WHERE s > 5")


def test_arithmetic_type_widening(catalog):
    a = _an(catalog, "SELECT a + b AS x FROM T")
    assert a.output_schema.field("x").dtype is DataType.FLOAT64


def test_division_always_float(catalog):
    a = _an(catalog, "SELECT a / a AS x FROM T")
    assert a.output_schema.field("x").dtype is DataType.FLOAT64


def test_join_condition_must_be_boolean(catalog):
    with pytest.raises(AnalysisError, match="boolean"):
        _an(catalog, "SELECT T.a FROM T JOIN J ON k")  # k is INT64


def test_order_by_alias_and_unknown(catalog):
    _an(catalog, "SELECT a AS x FROM T ORDER BY x")
    with pytest.raises(AnalysisError, match="unknown column"):
        _an(catalog, "SELECT a FROM T ORDER BY nonexistent")


def test_columns_of_projection_pushdown(catalog):
    a = _an(catalog, "SELECT a FROM T WHERE b > 1 ORDER BY s")
    assert a.columns_of("T") == ["a", "b", "s"]


def test_scalar_function_typing(catalog):
    a = _an(catalog, "SELECT LENGTH(s) n, UPPER(s) u, ABS(b) v FROM T")
    t = {n: f.dtype for n, f in zip(a.output_names, a.output_schema)}
    assert t["n"] is DataType.INT64
    assert t["u"] is DataType.STRING
    assert t["v"] is DataType.FLOAT64


def test_scalar_function_wrong_arg_type(catalog):
    with pytest.raises(AnalysisError):
        _an(catalog, "SELECT LENGTH(a) FROM T")
    with pytest.raises(AnalysisError):
        _an(catalog, "SELECT ABS(s) FROM T")


def test_not_requires_boolean(catalog):
    with pytest.raises(AnalysisError, match="NOT"):
        _an(catalog, "SELECT a FROM T WHERE NOT a")
