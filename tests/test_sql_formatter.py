"""Formatter: canonical SQL text, parse/format round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.formatter import format_expression, format_query
from repro.sql.parser import parse, parse_expression


def _round_trip(sql: str) -> None:
    query = parse(sql)
    assert parse(format_query(query)) == query


def test_simple_select():
    q = parse("SELECT a, b AS x FROM t")
    assert format_query(q) == "SELECT a, b AS x FROM t"


def test_full_clause_ordering():
    sql = (
        "SELECT c2, COUNT(*) AS n FROM T WHERE c1 > 5 "
        "GROUP BY c2 HAVING COUNT(*) > 1 ORDER BY n DESC, c2 LIMIT 3"
    )
    text = format_query(parse(sql))
    assert text.index("WHERE") < text.index("GROUP BY") < text.index("HAVING")
    assert text.index("HAVING") < text.index("ORDER BY") < text.index("LIMIT")
    _round_trip(sql)


def test_joins_round_trip():
    _round_trip(
        "SELECT t.a FROM t JOIN u ON t.a = u.a LEFT OUTER JOIN v ON t.a = v.a CROSS JOIN w"
    )


def test_within_and_contains():
    _round_trip("SELECT SUM(x) WITHIN y FROM t WHERE s CONTAINS 'needle'")


def test_string_escaping():
    q = parse("SELECT a FROM t WHERE s = 'it''s'")
    text = format_query(q)
    assert "'it''s'" in text
    _round_trip("SELECT a FROM t WHERE s = 'it''s'")


def test_boolean_literals():
    assert format_expression(parse_expression("TRUE")) == "TRUE"
    _round_trip("SELECT a FROM t WHERE flag = FALSE")


def test_minimal_parentheses():
    text = format_expression(parse_expression("a + b * c"))
    assert text == "a + b * c"
    text2 = format_expression(parse_expression("(a + b) * c"))
    assert text2 == "(a + b) * c"


def test_left_associativity_preserved():
    e = parse_expression("a - b - c")
    assert parse_expression(format_expression(e)) == e
    e2 = parse_expression("a - (b - c)")
    assert parse_expression(format_expression(e2)) == e2
    assert format_expression(e) != format_expression(e2)


def test_not_precedence():
    e = parse_expression("NOT (a > 1 AND b > 2)")
    assert parse_expression(format_expression(e)) == e


def test_indent_mode():
    text = format_query(parse("SELECT a FROM t WHERE a > 1 LIMIT 2"), indent=True)
    assert text.splitlines() == ["SELECT a", "FROM t", "WHERE a > 1", "LIMIT 2"]


def test_star_and_count_star():
    _round_trip("SELECT * FROM t")
    _round_trip("SELECT COUNT(*) FROM t")


def test_negative_numbers():
    _round_trip("SELECT a FROM t WHERE a > -5 AND a < -1 + 3")


@st.composite
def random_sql(draw):
    cols = ["a", "b", "c"]
    preds = []
    for _ in range(draw(st.integers(0, 3))):
        col = draw(st.sampled_from(cols))
        op = draw(st.sampled_from([">", ">=", "<", "<=", "=", "!="]))
        val = draw(st.integers(-9, 9))
        wrap = draw(st.sampled_from(["{}", "NOT ({})"]))
        preds.append(wrap.format(f"{col} {op} {val}"))
    where = " WHERE " + " AND ".join(f"({p})" for p in preds) if preds else ""
    shape = draw(st.sampled_from(["plain", "agg", "group"]))
    if shape == "plain":
        order = draw(st.sampled_from(["", " ORDER BY a", " ORDER BY a DESC, b"]))
        limit = draw(st.sampled_from(["", " LIMIT 5"]))
        return f"SELECT a, b{'' if not draw(st.booleans()) else ' AS bb'} FROM t{where}{order}{limit}"
    if shape == "agg":
        agg = draw(st.sampled_from(["COUNT(*)", "SUM(a)", "AVG(b)", "MIN(c)", "MAX(a)"]))
        return f"SELECT {agg} AS v FROM t{where}"
    return f"SELECT a, COUNT(*) AS n FROM t{where} GROUP BY a ORDER BY n DESC LIMIT 4"


@settings(max_examples=150, deadline=None)
@given(random_sql())
def test_property_format_parse_round_trip(sql):
    query = parse(sql)
    assert parse(format_query(query)) == query
    # idempotence: formatting the reparsed query yields the same text
    assert format_query(parse(format_query(query))) == format_query(query)
