"""Membership lifecycle (S55): sweep boundary, drain states, unregister,
and the sharded-manager routing/rehoming regressions."""

import pytest

from repro.cluster.membership import (
    HEARTBEAT_PERIOD_S,
    MISSED_LIMIT,
    ClusterManager,
)
from repro.cluster.messages import WorkerLoad
from repro.cluster.sharding import ShardedClusterManager
from repro.errors import ClusterStateError
from repro.sim.events import Simulator
from repro.sim.netmodel import NodeAddress

A0 = NodeAddress(0, 0, 0)
A1 = NodeAddress(0, 0, 1)
A2 = NodeAddress(0, 1, 0)


def advance(sim: Simulator, to: float) -> None:
    sim.schedule(to - sim.now, lambda: None)
    sim.run()


# -- ClusterManager: sweep boundary ---------------------------------------


def test_sweep_boundary_exactly_at_deadline_stays_alive():
    """The sweep predicate is *strictly* ``last_heartbeat < deadline``: a
    worker whose last heartbeat is exactly MISSED_LIMIT periods old has
    missed only MISSED_LIMIT - 1 beats plus an in-flight one — declaring
    it dead at the boundary would double-fault every slow-but-healthy
    worker.  Pin the boundary on both sides."""
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", A0)
    horizon = HEARTBEAT_PERIOD_S * MISSED_LIMIT
    advance(sim, horizon)  # deadline == last_heartbeat exactly
    assert cm.sweep() == []
    assert cm.is_alive("w0")
    advance(sim, horizon + 1e-9)  # one tick past: now overdue
    assert cm.sweep() == ["w0"]
    assert not cm.is_alive("w0")


# -- ClusterManager: drain + unregister -----------------------------------


def test_drain_lifecycle():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", A0)
    cm.register("w1", A1)
    assert not cm.is_draining("w0")
    cm.start_drain("w0")
    assert cm.is_draining("w0")
    assert cm.draining_workers() == ["w0"]
    # Draining is not death: the worker stays alive and heartbeating.
    assert cm.is_alive("w0")
    assert {r.worker_id for r in cm.live_workers()} == {"w0", "w1"}
    cm.cancel_drain("w0")
    assert not cm.is_draining("w0")
    assert cm.draining_workers() == []
    with pytest.raises(ClusterStateError):
        cm.start_drain("ghost")


def test_unregister_removes_worker_and_allows_rejoin():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", A0)
    cm.unregister("w0")
    assert cm.worker_count() == 0
    # Unregistered is gone, not dead: lookups and heartbeats raise.
    with pytest.raises(ClusterStateError):
        cm.is_alive("w0")
    with pytest.raises(ClusterStateError):
        cm.heartbeat("w0", WorkerLoad())
    with pytest.raises(ClusterStateError):
        cm.unregister("w0")
    # The same id may rejoin from scratch.
    cm.register("w0", A1)
    assert cm.is_alive("w0")
    assert cm.address_of("w0") == A1


# -- ShardedClusterManager ------------------------------------------------


def _ids_for_shard(scm: ShardedClusterManager, shard, prefix: str, count: int):
    """Worker ids whose hash route lands on ``shard``."""
    out = []
    i = 0
    while len(out) < count:
        wid = f"{prefix}{i}"
        if scm._hash_shard(wid) is shard:  # noqa: SLF001
            out.append(wid)
        i += 1
    return out


def test_probe_of_unknown_worker_does_not_pollute_routing():
    """Regression (S55 satellite): ``_shard_for`` used to cache the hash
    route on *any* lookup, so probing an unregistered id (a monitoring
    typo, a scheduler race) pinned it to its hash shard before the shard
    raised — and when that shard was full, a later legitimate register
    rehomed the worker to a spare while lookups kept following the stale
    cached route into the full shard: every heartbeat then raised
    "unknown worker" for a worker that *was* registered."""
    sim = Simulator()
    scm = ShardedClusterManager(sim, shards=2, shard_capacity=1)
    victim = "w-new"
    # Probe before registration — the path that used to pollute _route.
    with pytest.raises(ClusterStateError):
        scm.is_alive(victim)
    # Fill the shard the victim hashes to, forcing overflow rehoming.
    home = scm._hash_shard(victim)  # noqa: SLF001
    (filler,) = _ids_for_shard(scm, home, "f", 1)
    scm.register(filler, A0)
    scm.register(victim, A1)
    assert scm.worker_count() == 2
    assert sorted(scm.shard_sizes()) == [1, 1]
    # Lookups must follow the worker to where it actually registered.
    assert scm.is_alive(victim)
    scm.heartbeat(victim, WorkerLoad())
    assert scm.address_of(victim) == A1


def test_failed_register_does_not_move_existing_worker():
    sim = Simulator()
    scm = ShardedClusterManager(sim, shards=2, shard_capacity=4)
    scm.register("w0", A0)
    with pytest.raises(ClusterStateError):
        scm.register("w0", A1)  # duplicate
    assert scm.address_of("w0") == A0
    assert scm.worker_count() == 1


def test_overflow_exhaustion_demands_add_shard():
    sim = Simulator()
    scm = ShardedClusterManager(sim, shards=2, shard_capacity=1)
    scm.register("a", A0)
    # Fill whichever shard is still open.
    spare = next(s for s in scm._shards if s.worker_count() == 0)  # noqa: SLF001
    (wid,) = _ids_for_shard(scm, spare, "b", 1)
    scm.register(wid, A1)
    with pytest.raises(ClusterStateError, match="add_shard"):
        scm.register("c", A2)


def test_add_shard_pins_existing_workers_and_serves_new_ones():
    sim = Simulator()
    scm = ShardedClusterManager(sim, shards=1, shard_capacity=2)
    scm.register("w0", A0)
    scm.register("w1", A1)
    sizes_before = scm.shard_sizes()
    scm.add_shard()
    # Existing workers keep their established heartbeat connection.
    assert scm.shard_sizes()[: len(sizes_before)] == sizes_before
    assert scm.is_alive("w0") and scm.is_alive("w1")
    # The old shard is at capacity: the next register rehomes to the new.
    scm.register("w2", A2)
    assert scm.shard_sizes() == [2, 1]
    assert scm.is_alive("w2")


def test_add_shard_propagates_readmit_listeners():
    """A shard added after ``on_readmit`` subscriptions must inherit
    them — a worker rehomed onto the new shard that dies and comes back
    would otherwise resurrect silently, exactly the bug explicit
    re-admission exists to prevent."""
    sim = Simulator()
    events = []
    scm = ShardedClusterManager(sim, shards=1, shard_capacity=1)
    scm.on_readmit(events.append)
    scm.register("w0", A0)
    scm.add_shard()
    scm.register("w1", A1)  # overflows onto the new shard
    assert scm.shard_sizes() == [1, 1]
    advance(sim, HEARTBEAT_PERIOD_S * MISSED_LIMIT + 1.0)
    assert set(scm.sweep()) == {"w0", "w1"}
    scm.heartbeat("w1", WorkerLoad())
    assert events == ["w1"]
    assert scm.readmissions == 1


def test_sharded_drain_and_unregister_forwarding():
    sim = Simulator()
    scm = ShardedClusterManager(sim, shards=2)
    scm.register("w0", A0)
    scm.register("w1", A1)
    scm.start_drain("w0")
    assert scm.is_draining("w0") and not scm.is_draining("w1")
    assert scm.draining_workers() == ["w0"]
    scm.cancel_drain("w0")
    assert scm.draining_workers() == []
    scm.unregister("w1")
    assert scm.worker_count() == 1
    with pytest.raises(ClusterStateError):
        scm.is_alive("w1")
