"""Relational operators: joins, sort, limit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators import (
    apply_filter,
    cross_join,
    equi_join_keys,
    hash_join,
    limit_frame,
    prefix_columns,
    sort_frame,
)
from repro.errors import ExecutionError
from repro.planner.expressions import Frame
from repro.sql.ast import JoinKind
from repro.sql.parser import parse_expression


def _frame(**cols):
    out = {}
    for k, v in cols.items():
        if v and isinstance(v[0], str):
            arr = np.empty(len(v), dtype=object)
            arr[:] = v
            out[k] = arr
        else:
            out[k] = np.asarray(v)
    return Frame.from_columns(out)


def test_apply_filter_checks_length():
    f = _frame(a=[1, 2, 3])
    with pytest.raises(ExecutionError):
        apply_filter(f, np.array([True]))


def test_prefix_columns():
    f = prefix_columns(_frame(a=[1]), "t")
    assert list(f.columns) == ["t.a"]


def test_equi_join_keys_extraction():
    cond = parse_expression("t.k = u.k AND t.j = u.j")
    pairs = equi_join_keys(cond, "t", "u")
    assert len(pairs) == 2
    assert all(p[0].table == "t" and p[1].table == "u" for p in pairs)


def test_equi_join_keys_rejects_non_equi():
    assert equi_join_keys(parse_expression("t.k > u.k"), "t", "u") is None
    assert equi_join_keys(parse_expression("t.k = 5"), "t", "u") is None


def test_hash_join_inner():
    left = prefix_columns(_frame(k=[1, 2, 2, 3], v=[10, 20, 21, 30]), "l")
    right = prefix_columns(_frame(k=[2, 3, 4], w=["b", "c", "d"]), "r")
    out = hash_join(left, right, ["l.k"], ["r.k"], JoinKind.INNER)
    assert out.num_rows == 3  # k=2 matches twice, k=3 once
    assert sorted(zip(out.column("l.k"), out.column("r.w"))) == [
        (2, "b"), (2, "b"), (3, "c"),
    ]


def test_hash_join_left_outer_pads():
    left = prefix_columns(_frame(k=[1, 2], v=[10, 20]), "l")
    right = prefix_columns(_frame(k=[2], w=["b"]), "r")
    out = hash_join(left, right, ["l.k"], ["r.k"], JoinKind.LEFT_OUTER)
    assert out.num_rows == 2
    rows = dict(zip(out.column("l.k"), out.column("r.w")))
    assert rows[2] == "b" and rows[1] == ""  # string pad default


def test_hash_join_right_outer_symmetric():
    left = prefix_columns(_frame(k=[2], v=[20]), "l")
    right = prefix_columns(_frame(k=[1, 2], w=["a", "b"]), "r")
    out = hash_join(left, right, ["l.k"], ["r.k"], JoinKind.RIGHT_OUTER)
    assert out.num_rows == 2
    rows = dict(zip(out.column("r.k"), out.column("l.v")))
    assert rows[2] == 20 and rows[1] == 0  # numeric pad default


def test_join_column_collision_rejected():
    f = _frame(k=[1])
    with pytest.raises(ExecutionError, match="collision"):
        hash_join(f, f, ["k"], ["k"])


def test_cross_join_cardinality():
    left = prefix_columns(_frame(a=[1, 2]), "l")
    right = prefix_columns(_frame(b=["x", "y", "z"]), "r")
    out = cross_join(left, right)
    assert out.num_rows == 6
    assert list(out.column("l.a")) == [1, 1, 1, 2, 2, 2]
    assert list(out.column("r.b")) == ["x", "y", "z"] * 2


def test_sort_single_key_desc():
    f = _frame(a=[3, 1, 2])
    out = sort_frame(f, [(f.column("a"), False)])
    assert list(out.column("a")) == [3, 2, 1]


def test_sort_multi_key_stable():
    f = _frame(a=[1, 1, 0, 0], b=[5, 3, 9, 1])
    out = sort_frame(f, [(f.column("a"), True), (f.column("b"), False)])
    assert list(out.column("a")) == [0, 0, 1, 1]
    assert list(out.column("b")) == [9, 1, 5, 3]


def test_sort_descending_preserves_tie_order():
    f = _frame(a=[1, 1, 1], tag=["first", "second", "third"])
    out = sort_frame(f, [(f.column("a"), False)])
    assert list(out.column("tag")) == ["first", "second", "third"]


def test_limit():
    f = _frame(a=[1, 2, 3])
    assert limit_frame(f, 2).num_rows == 2
    assert limit_frame(f, None).num_rows == 3
    assert limit_frame(f, 0).num_rows == 0
    assert limit_frame(f, 10).num_rows == 3


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 5), max_size=30),
    st.lists(st.integers(0, 5), max_size=30),
)
def test_property_inner_join_matches_bruteforce(lk, rk):
    left = prefix_columns(_frame(k=lk, i=list(range(len(lk)))), "l")
    right = prefix_columns(_frame(k=rk, j=list(range(len(rk)))), "r")
    out = hash_join(left, right, ["l.k"], ["r.k"], JoinKind.INNER)
    expected = sorted(
        (i, j) for i, a in enumerate(lk) for j, b in enumerate(rk) if a == b
    )
    got = sorted(zip(out.column("l.i"), out.column("r.j")))
    assert got == expected


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-5, 5), st.integers(-5, 5)), max_size=40))
def test_property_multikey_sort_matches_python(pairs):
    a = [p[0] for p in pairs]
    b = [p[1] for p in pairs]
    f = _frame(a=a, b=b)
    out = sort_frame(f, [(f.column("a"), True), (f.column("b"), False)])
    expected = sorted(zip(a, b), key=lambda p: (p[0], -p[1]))
    assert list(zip(out.column("a"), out.column("b"))) == expected


def test_hash_join_build_side_is_always_right_input():
    # The docstring's contract: the right input is the build side no
    # matter which side is larger, and output order stays left-row-major
    # with right matches ascending.
    big_left = prefix_columns(_frame(k=[1, 2, 1, 3], i=[0, 1, 2, 3]), "l")
    small_right = prefix_columns(_frame(k=[1, 1, 2], j=[0, 1, 2]), "r")
    out = hash_join(big_left, small_right, ["l.k"], ["r.k"], JoinKind.INNER)
    assert list(zip(out.column("l.i"), out.column("r.j"))) == [
        (0, 0), (0, 1), (1, 2), (2, 0), (2, 1)
    ]
    # Swap relative sizes: same contract, order still driven by the left.
    out = hash_join(small_right, big_left, ["r.k"], ["l.k"], JoinKind.INNER)
    assert list(zip(out.column("r.j"), out.column("l.i"))) == [
        (0, 0), (0, 2), (1, 0), (1, 2), (2, 1)
    ]
