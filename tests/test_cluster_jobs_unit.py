"""Unit tests for task signatures and job bookkeeping."""

import numpy as np
import pytest

from repro.cluster.jobs import JobOptions, new_job, task_signature
from repro.columnar.schema import DataType, Schema
from repro.columnar.table import Catalog
from repro.planner.physical import build_plan
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.storage.loader import store_table
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS
from repro.sim.netmodel import TopologySpec


@pytest.fixture(scope="module")
def catalog():
    nodes = TopologySpec(1, 1, 4).addresses()
    hdfs = DistributedFS(nodes)
    router = StorageRouter()
    router.register(hdfs, default=True)
    cat = Catalog()
    rng = np.random.default_rng(1)
    store_table(
        "T",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
        {"a": rng.integers(0, 10, 1000), "b": rng.random(1000)},
        router,
        hdfs,
        block_rows=500,
        catalog=cat,
    )
    return cat


def _plan(catalog, sql):
    return build_plan(analyze(parse(sql), catalog))


def test_identical_queries_same_signatures(catalog):
    p1 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    p2 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    sigs1 = [task_signature(p1, t) for t in p1.tasks]
    sigs2 = [task_signature(p2, t) for t in p2.tasks]
    assert sigs1 == sigs2  # despite distinct plan/task ids


def test_textual_variants_share_signatures(catalog):
    # canonical CNF keys make `3 < a` identical to `a > 3`
    p1 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    p2 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE 3 < a")
    assert [task_signature(p1, t) for t in p1.tasks] == [
        task_signature(p2, t) for t in p2.tasks
    ]


def test_different_predicates_different_signatures(catalog):
    p1 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    p2 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 4")
    assert task_signature(p1, p1.tasks[0]) != task_signature(p2, p2.tasks[0])


def test_different_aggregates_different_signatures(catalog):
    p1 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    p2 = _plan(catalog, "SELECT SUM(b) FROM T WHERE a > 3")
    assert task_signature(p1, p1.tasks[0]) != task_signature(p2, p2.tasks[0])


def test_projection_vs_aggregate_different_signatures(catalog):
    p1 = _plan(catalog, "SELECT a FROM T WHERE a > 3")
    p2 = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    assert task_signature(p1, p1.tasks[0]) != task_signature(p2, p2.tasks[0])


def test_new_job_snapshot(catalog):
    plan = _plan(catalog, "SELECT COUNT(*) FROM T WHERE a > 3")
    job = new_job("u", "SELECT ...", plan, JobOptions(), now=5.0)
    assert job.submitted_at == 5.0
    assert job.stats.tasks_total == len(plan.tasks)
    assert job.response_time_s == 0.0  # not finished yet
