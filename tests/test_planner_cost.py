"""Cost model unit tests (the §III-B cost-based planner's arithmetic)."""

import pytest

from repro.columnar.table import BlockRef
from repro.planner.cnf import to_cnf
from repro.planner.cost import (
    OPS_PER_COMPARISON,
    OPS_PER_CONTAINS,
    CostModel,
)
from repro.planner.physical import ScanTask
from repro.sql.parser import parse_expression


def _task(num_rows=10_000, scale=1.0, col_bytes=8_000):
    ref = BlockRef(
        block_id="t.b0",
        path="/hdfs/t/b0",
        num_rows=num_rows,
        encoded_bytes=col_bytes * 2,
        column_bytes=(("a", col_bytes), ("b", col_bytes)),
        scale_factor=scale,
    )
    return ScanTask("p/t0", "T", "T", ref, ("a", "b"))


def test_predicate_ops_weighting():
    model = CostModel()
    cheap = model.predicate_ops_per_row(to_cnf(parse_expression("a > 1")))
    heavy = model.predicate_ops_per_row(to_cnf(parse_expression("s CONTAINS 'x'")))
    assert cheap == OPS_PER_COMPARISON
    assert heavy == OPS_PER_CONTAINS
    both = model.predicate_ops_per_row(to_cnf(parse_expression("a > 1 AND s CONTAINS 'x'")))
    assert both == OPS_PER_COMPARISON + OPS_PER_CONTAINS


def test_scan_io_scales_with_modeled_bytes():
    model = CostModel()
    small = model.scan_io_seconds(_task(scale=1.0))
    big = model.scan_io_seconds(_task(scale=100.0))
    # transfer components scale exactly with the modeled bytes; the seek
    # charge is constant
    assert big - model.disk_seek_s == pytest.approx((small - model.disk_seek_s) * 100)
    assert big > small


def test_bandwidth_factor_slows_io():
    model = CostModel()
    normal = model.scan_io_seconds(_task(scale=100.0), bandwidth_factor=1.0)
    throttled = model.scan_io_seconds(_task(scale=100.0), bandwidth_factor=0.5)
    assert throttled == pytest.approx(
        model.disk_seek_s + (normal - model.disk_seek_s) * 2
    )


def test_index_covered_much_cheaper():
    model = CostModel()
    cnf = to_cnf(parse_expression("a > 1 AND b < 2"))
    task = _task(scale=1000.0)
    cold = model.task_seconds(task, cnf, index_covered=False)
    covered = model.task_seconds(task, cnf, index_covered=True)
    assert covered < cold / 20


def test_extra_latency_added_once():
    model = CostModel()
    cnf = to_cnf(parse_expression("a > 1"))
    base = model.task_seconds(_task(), cnf)
    cold_store = model.task_seconds(_task(), cnf, extra_latency_s=0.25)
    assert cold_store == pytest.approx(base + 0.25)


def test_index_cost_grows_with_clauses_and_rows():
    model = CostModel()
    one = model.index_cpu_seconds(_task(num_rows=1000), 1)
    many = model.index_cpu_seconds(_task(num_rows=1000), 4)
    bigger = model.index_cpu_seconds(_task(num_rows=4000), 1)
    assert many == pytest.approx(one * 4)
    assert bigger == pytest.approx(one * 4)


def test_cpu_seconds_include_decode_and_filter():
    model = CostModel()
    no_filter = model.scan_cpu_seconds(_task(), to_cnf(None))
    filtered = model.scan_cpu_seconds(_task(), to_cnf(parse_expression("a > 1")))
    assert 0 < no_filter < filtered
