"""Property tests: vectorized kernels vs. the scalar loops they replaced.

The references below are faithful copies of the seed's row-at-a-time
implementations (dict-table hash join, per-group ``state.update`` loop,
per-key argsort/reverse/tie-fix sort, byte-loop RLE codec).  Hypothesis
drives both sides with int64 / float64 / object-string columns, empty
frames, all-equal keys and outer-join padding; results must match
bit-for-bit (float sums use exactly-representable values — sixteenths —
so summation order cannot shift the result).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.aggregates import make_state, partial_aggregate
from repro.engine.operators import hash_join, sort_frame
from repro.index.bitmap import BitVector, rle_compress, rle_decompress
from repro.planner.expressions import Frame
from repro.sql.ast import JoinKind

settings.register_profile("kernels", deadline=None, max_examples=60)
settings.load_profile("kernels")


def _to_python(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


# -- scalar references (copied from the seed) ------------------------------


def _default_pad(col, n):
    if col.dtype == object:
        pad = np.empty(n, dtype=object)
        pad[:] = ""
        return pad
    return np.zeros(n, dtype=col.dtype)


def _reference_hash_join(left, right, left_keys, right_keys, kind):
    if kind is JoinKind.RIGHT_OUTER:
        return _reference_hash_join(right, left, right_keys, left_keys,
                                    JoinKind.LEFT_OUTER)
    left_arrays = [left.column(k) for k in left_keys]
    right_arrays = [right.column(k) for k in right_keys]
    table = {}
    for i in range(right.num_rows):
        key = tuple(arr[i] for arr in right_arrays)
        table.setdefault(key, []).append(i)
    left_idx, right_idx, unmatched = [], [], []
    for i in range(left.num_rows):
        key = tuple(arr[i] for arr in left_arrays)
        matches = table.get(key)
        if matches:
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)
        elif kind is JoinKind.LEFT_OUTER:
            unmatched.append(i)
    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)
    out = {}
    for name, col in left.columns.items():
        matched_part = col[li]
        if unmatched:
            matched_part = np.concatenate((matched_part, col[np.asarray(unmatched)]))
        out[name] = matched_part
    pad = len(unmatched)
    for name, col in right.columns.items():
        matched_part = col[ri]
        if pad:
            matched_part = np.concatenate((matched_part, _default_pad(col, pad)))
        out[name] = matched_part
    return Frame(out, len(li) + pad)


def _reference_group_rows(key_columns, num_rows):
    if not key_columns:
        ids = np.zeros(num_rows, dtype=np.int64)
        if num_rows == 0:
            return ids, np.zeros(0, dtype=np.int64)
        return ids, np.array([0], dtype=np.int64)
    combined = None
    for col in key_columns:
        uniques, codes = np.unique(col, return_inverse=True)
        codes = codes.astype(np.int64)
        combined = codes if combined is None else combined * np.int64(len(uniques)) + codes
    _, reps, ids = np.unique(combined, return_index=True, return_inverse=True)
    return ids.astype(np.int64), reps.astype(np.int64)


def _reference_partial_aggregate(key_arrays, agg_funcs, agg_arrays, num_rows):
    """Seed group loop; returns {key_tuple: [state, ...]}."""
    groups = {}
    if num_rows == 0:
        if not key_arrays:
            groups[()] = [make_state(f) for f in agg_funcs]
        return groups
    ids, _reps = _reference_group_rows(key_arrays, num_rows)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    slices = np.append(boundaries, len(sorted_ids))
    for gi in range(len(boundaries)):
        rows = order[slices[gi] : slices[gi + 1]]
        rep = rows[0]
        key = tuple(_to_python(col[rep]) for col in key_arrays)
        states = groups.get(key)
        if states is None:
            states = [make_state(f) for f in agg_funcs]
            groups[key] = states
        for state, arr in zip(states, agg_arrays):
            if arr is None:
                state.update_count(len(rows))
            else:
                state.update(arr[rows])
    return groups


def _reference_sort_frame(frame, keys):
    order = np.arange(frame.num_rows)
    for values, ascending in reversed(list(keys)):
        take = values[order]
        idx = np.argsort(take, kind="stable")
        if not ascending:
            idx = idx[::-1]
            idx = _reference_stable_descending(take, idx)
        order = order[idx]
    return frame.take(order)


def _reference_stable_descending(values, reversed_idx):
    sorted_vals = values[reversed_idx]
    out = reversed_idx.copy()
    start = 0
    n = len(sorted_vals)
    for i in range(1, n + 1):
        if i == n or sorted_vals[i] != sorted_vals[start]:
            out[start:i] = out[start:i][::-1]
            start = i
    return out


def _reference_rle_compress(bv):
    raw = bv._bits  # noqa: SLF001
    if len(raw) == 0:
        return b"", bv.length
    change = np.concatenate(([True], raw[1:] != raw[:-1]))
    starts = np.flatnonzero(change)
    lengths = np.diff(np.concatenate((starts, [len(raw)])))
    out = bytearray()
    for start, run in zip(starts, lengths):
        run = int(run)
        while run > 0:
            chunk = min(run, 0xFFFF)
            out += chunk.to_bytes(2, "little")
            out.append(int(raw[start]))
            run -= chunk
    return bytes(out), bv.length


# -- strategies ------------------------------------------------------------

# Exactly-representable floats (sixteenths): every partial sum is exact,
# so SUM/AVG are identical regardless of summation order or tree shape.
exact_floats = st.integers(-4096, 4096).map(lambda v: v / 16.0)
small_ints = st.integers(-5, 5)
wide_ints = st.integers(-(10**9), 10**9)
words = st.sampled_from(["", "a", "b", "ab", "zz", "site3"])

key_families = st.sampled_from(["int", "float", "str"])


def _column(family, values):
    if family == "int":
        return np.asarray(values, dtype=np.int64)
    if family == "float":
        return np.asarray(values, dtype=np.float64)
    arr = np.empty(len(values), dtype=object)
    arr[:] = [str(v) for v in values]
    return arr


def _family_strategy(family):
    if family == "int":
        return st.one_of(small_ints, wide_ints)
    if family == "float":
        return exact_floats
    return words


def _assert_frames_equal(a, b):
    assert a.num_rows == b.num_rows
    assert list(a.columns) == list(b.columns)
    for name in a.columns:
        ca, cb = a.columns[name], b.columns[name]
        assert ca.dtype == cb.dtype
        assert ca.tolist() == cb.tolist(), name


# -- hash join -------------------------------------------------------------


@given(
    data=st.data(),
    family=key_families,
    kind=st.sampled_from([JoinKind.INNER, JoinKind.LEFT_OUTER, JoinKind.RIGHT_OUTER]),
)
def test_hash_join_matches_scalar_reference(data, family, kind):
    elems = _family_strategy(family)
    lk = data.draw(st.lists(elems, min_size=0, max_size=30))
    rk = data.draw(st.lists(elems, min_size=0, max_size=30))
    left = Frame(
        {"l.k": _column(family, lk),
         "l.v": np.arange(len(lk), dtype=np.int64)},
        len(lk),
    )
    right = Frame(
        {"r.k": _column(family, rk),
         "r.w": np.arange(len(rk), dtype=np.float64)},
        len(rk),
    )
    got = hash_join(left, right, ["l.k"], ["r.k"], kind)
    want = _reference_hash_join(left, right, ["l.k"], ["r.k"], kind)
    _assert_frames_equal(got, want)


@given(data=st.data(), kind=st.sampled_from([JoinKind.INNER, JoinKind.LEFT_OUTER]))
def test_hash_join_multi_key_matches_scalar_reference(data, kind):
    n_left = data.draw(st.integers(0, 25))
    n_right = data.draw(st.integers(0, 25))
    lk1 = data.draw(st.lists(small_ints, min_size=n_left, max_size=n_left))
    lk2 = data.draw(st.lists(words, min_size=n_left, max_size=n_left))
    rk1 = data.draw(st.lists(small_ints, min_size=n_right, max_size=n_right))
    rk2 = data.draw(st.lists(words, min_size=n_right, max_size=n_right))
    left = Frame(
        {"l.a": _column("int", lk1), "l.b": _column("str", lk2)}, n_left
    )
    right = Frame(
        {"r.a": _column("int", rk1), "r.b": _column("str", rk2)}, n_right
    )
    got = hash_join(left, right, ["l.a", "l.b"], ["r.a", "r.b"], kind)
    want = _reference_hash_join(left, right, ["l.a", "l.b"], ["r.a", "r.b"], kind)
    _assert_frames_equal(got, want)


def test_hash_join_all_equal_keys_is_cross_product():
    left = Frame({"l.k": np.full(7, 3, dtype=np.int64)}, 7)
    right = Frame({"r.k": np.full(5, 3, dtype=np.int64)}, 5)
    got = hash_join(left, right, ["l.k"], ["r.k"], JoinKind.INNER)
    want = _reference_hash_join(left, right, ["l.k"], ["r.k"], JoinKind.INNER)
    assert got.num_rows == 35
    _assert_frames_equal(got, want)


# -- grouped aggregation ---------------------------------------------------


@given(data=st.data(), family=key_families, use_count_star=st.booleans())
def test_partial_aggregate_matches_scalar_reference(data, family, use_count_star):
    n = data.draw(st.integers(0, 40))
    keys = _column(
        family, data.draw(st.lists(_family_strategy(family), min_size=n, max_size=n))
    )
    values = np.asarray(
        data.draw(st.lists(exact_floats, min_size=n, max_size=n)), dtype=np.float64
    )
    ints = np.asarray(
        data.draw(st.lists(small_ints, min_size=n, max_size=n)), dtype=np.int64
    )
    funcs = ["COUNT", "SUM", "MIN", "MAX", "AVG", "SUM"]
    arrays = [None if use_count_star else values, values, values, values, values, ints]
    got = partial_aggregate([keys], funcs, arrays, n)
    want = _reference_partial_aggregate([keys], funcs, arrays, n)
    assert set(got.groups) == set(want.keys())
    for key, states in got.groups.items():
        finals = [s.final() for s in states]
        ref_finals = [s.final() for s in want[key]]
        assert finals == ref_finals, key


@given(data=st.data())
def test_partial_aggregate_multi_key_matches_scalar_reference(data):
    n = data.draw(st.integers(0, 40))
    k1 = _column("int", data.draw(st.lists(small_ints, min_size=n, max_size=n)))
    k2 = _column("str", data.draw(st.lists(words, min_size=n, max_size=n)))
    values = np.asarray(
        data.draw(st.lists(exact_floats, min_size=n, max_size=n)), dtype=np.float64
    )
    funcs = ["COUNT", "SUM", "MIN", "MAX", "AVG"]
    arrays = [values] * 5
    got = partial_aggregate([k1, k2], funcs, arrays, n)
    want = _reference_partial_aggregate([k1, k2], funcs, arrays, n)
    assert set(got.groups) == set(want.keys())
    for key, states in got.groups.items():
        assert [s.final() for s in states] == [s.final() for s in want[key]], key


@given(data=st.data())
def test_partial_aggregate_no_keys_matches_scalar_reference(data):
    n = data.draw(st.integers(0, 40))
    values = np.asarray(
        data.draw(st.lists(exact_floats, min_size=n, max_size=n)), dtype=np.float64
    )
    funcs = ["COUNT", "SUM", "AVG"]
    arrays = [None, values, values]
    got = partial_aggregate([], funcs, arrays, n)
    want = _reference_partial_aggregate([], funcs, arrays, n)
    assert set(got.groups) == set(want.keys())
    for key, states in got.groups.items():
        assert [s.final() for s in states] == [s.final() for s in want[key]]


def test_partial_aggregate_nan_keys_share_one_group():
    # NaN != NaN must not split NaN rows into per-row groups: the scalar
    # path's np.unique factorize collapsed all NaNs into one group.
    import math

    keys = np.array([np.nan, 1.0, np.nan], dtype=np.float64)
    values = np.array([2.0, 5.0, 3.0], dtype=np.float64)
    got = partial_aggregate([keys], ["COUNT", "SUM"], [None, values], 3)
    want = _reference_partial_aggregate([keys], ["COUNT", "SUM"], [None, values], 3)

    def by_label(groups):
        out = {}
        for (k,), states in groups.items():
            label = "nan" if isinstance(k, float) and math.isnan(k) else k
            assert label not in out  # one group per distinct key, NaN included
            out[label] = [s.final() for s in states]
        return out

    assert by_label(got.groups) == by_label(want) == {"nan": [2, 5.0], 1.0: [1, 5.0]}


def test_partial_aggregate_avg_int64_exact_beyond_double_precision():
    # The scalar AvgState summed exactly in int64 and converted once;
    # element-wise float conversion would collapse these to AVG == 0.0.
    values = np.array([2**60 + 1, 2**60 + 3, -(2**60), -(2**60)], dtype=np.int64)
    keys = np.zeros(4, dtype=np.int64)
    got = partial_aggregate([keys], ["AVG"], [values], 4)
    want = _reference_partial_aggregate([keys], ["AVG"], [values], 4)
    assert [s.final() for s in got.groups[(0,)]] == [1.0]
    assert [s.final() for s in want[(0,)]] == [1.0]


@given(data=st.data())
def test_partial_aggregate_general_floats_within_tolerance(data):
    # Arbitrary doubles: summation order may differ, so SUM/AVG get a
    # relative tolerance; COUNT/MIN/MAX stay exact.
    n = data.draw(st.integers(1, 40))
    keys = _column("int", data.draw(st.lists(small_ints, min_size=n, max_size=n)))
    values = np.asarray(
        data.draw(
            st.lists(
                st.floats(-1e12, 1e12, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.float64,
    )
    funcs = ["COUNT", "SUM", "MIN", "MAX", "AVG"]
    got = partial_aggregate([keys], funcs, [values] * 5, n)
    want = _reference_partial_aggregate([keys], funcs, [values] * 5, n)
    assert set(got.groups) == set(want.keys())
    # Reordering error for a float sum is bounded by n * eps * sum(|x|),
    # which dwarfs rel * |sum| when large terms cancel to a small total.
    slack = n * np.finfo(np.float64).eps * float(np.sum(np.abs(values)))
    for key, states in got.groups.items():
        g = [s.final() for s in states]
        w = [s.final() for s in want[key]]
        assert g[0] == w[0] and g[2] == w[2] and g[3] == w[3]
        assert g[1] == pytest.approx(w[1], rel=1e-9, abs=slack)
        assert g[4] == pytest.approx(w[4], rel=1e-9, abs=slack / g[0])


# -- sort ------------------------------------------------------------------


@given(data=st.data())
def test_sort_frame_matches_scalar_reference(data):
    n = data.draw(st.integers(0, 40))
    families = data.draw(st.lists(key_families, min_size=1, max_size=3))
    cols = {}
    keys = []
    for i, family in enumerate(families):
        col = _column(
            family, data.draw(st.lists(_family_strategy(family), min_size=n, max_size=n))
        )
        cols[f"k{i}"] = col
        keys.append((col, data.draw(st.booleans())))
    cols["row"] = np.arange(n, dtype=np.int64)  # witnesses tie order
    frame = Frame(cols, n)
    _assert_frames_equal(sort_frame(frame, keys), _reference_sort_frame(frame, keys))


@given(data=st.data())
def test_sort_frame_nan_keys_match_scalar_reference(data):
    # The scalar tie-fix loop saw each NaN as a distinct key, so a
    # descending sort emitted NaN rows in reversed input order; the
    # lexsort path must reproduce that (and ascending input order).
    n = data.draw(st.integers(0, 30))
    nan_floats = st.one_of(exact_floats, st.just(float("nan")))
    k1 = np.asarray(
        data.draw(st.lists(small_ints, min_size=n, max_size=n)), dtype=np.int64
    )
    k2 = np.asarray(
        data.draw(st.lists(nan_floats, min_size=n, max_size=n)), dtype=np.float64
    )
    keys = [(k1, data.draw(st.booleans())), (k2, data.draw(st.booleans()))]
    frame = Frame({"k1": k1, "k2": k2, "row": np.arange(n, dtype=np.int64)}, n)
    got = sort_frame(frame, keys)
    want = _reference_sort_frame(frame, keys)
    # Compare the row witness: tolist() equality can't see NaN columns.
    assert got.columns["row"].tolist() == want.columns["row"].tolist()


def test_stable_order_narrow_int_dtypes_full_span():
    # A span exceeding the input dtype's positive range must not wrap
    # when rebasing for the radix path.
    from repro.engine.operators import _stable_order

    for dtype in (np.int8, np.int16, np.int32):
        info = np.iinfo(dtype)
        col = np.array([info.max, info.min, 0, 100, -100, 0], dtype=dtype)
        order = _stable_order(col)
        assert col[order].tolist() == sorted(col.tolist())
        # stability: the two zeros keep input order
        zero_positions = [int(i) for i in order if col[i] == 0]
        assert zero_positions == [2, 5]


# -- RLE codec -------------------------------------------------------------


@given(bits=st.lists(st.booleans(), min_size=0, max_size=400))
def test_rle_payload_and_roundtrip_match_scalar_reference(bits):
    bv = BitVector.from_bool_array(np.asarray(bits, dtype=bool))
    payload, length = rle_compress(bv)
    ref_payload, ref_length = _reference_rle_compress(bv)
    assert payload == ref_payload  # byte-format compatibility
    assert length == ref_length
    back = rle_decompress(payload, length)
    assert back.to_bool_array().tolist() == bits


def test_rle_long_run_chunking_matches_scalar_reference():
    # A single run longer than 0xFFFF bytes must split into uint16 chunks
    # exactly like the byte loop did.
    bv = BitVector.from_bool_array(np.ones(0x10002 * 8, dtype=bool))
    payload, length = rle_compress(bv)
    ref_payload, ref_length = _reference_rle_compress(bv)
    assert (payload, length) == (ref_payload, ref_length)
    assert rle_decompress(payload, length).count() == 0x10002 * 8
