"""EXPLAIN rendering and the command-line front-end."""

import io

import pytest

from repro.client.cli import build_parser, main
from repro.errors import AccessDeniedError, ParseError
from repro.client import FeisuClient


# -- EXPLAIN -------------------------------------------------------------------


def test_explain_simple_scan(small_cluster):
    text = small_cluster.explain("SELECT COUNT(*) FROM T WHERE c2 > 3 AND c2 <= 7")
    assert "scan T" in text
    assert "(c2 > 3)" in text and "(c2 <= 7)" in text
    assert "SmartIndex-eligible" in text
    assert "index-covered" in text
    assert "payload columns: (none)" in text  # COUNT(*) needs no payload


def test_explain_join_and_grouping(small_cluster):
    text = small_cluster.explain(
        "SELECT label, SUM(clicks) s FROM T JOIN D ON T.c2 = D.c2 "
        "WHERE c1 < 10 GROUP BY label HAVING SUM(clicks) > 1 ORDER BY s DESC LIMIT 5"
    )
    assert "broadcast join [INNER] D AS D" in text
    assert "group keys: label" in text
    assert "having:" in text
    assert "limit: 5" in text
    assert "order by: s DESC" in text


def test_explain_shows_pruning(small_cluster):
    text = small_cluster.explain("SELECT COUNT(*) FROM T WHERE c1 > 100000")
    assert "0 tasks" in text
    assert "blocks pruned" in text


def test_explain_residual_predicates_in_post_filter(small_cluster):
    text = small_cluster.explain("SELECT COUNT(*) FROM T WHERE c1 + c2 > 5")
    assert "post-join filter: ((c1 + c2) > 5)" in text
    assert "scan predicates: (none)" in text


def test_client_explain_checks_rights(fresh_cluster):
    fresh_cluster.create_user("reader")  # no table grants
    client = FeisuClient(fresh_cluster, "reader")
    with pytest.raises(AccessDeniedError):
        client.explain("SELECT COUNT(*) FROM T")
    with pytest.raises(ParseError):
        client.explain("SELEC nope")


# -- CLI ----------------------------------------------------------------------------


def _run_cli(args):
    out = io.StringIO()
    code = main(args, stdout=out)
    return code, out.getvalue()


def test_cli_runs_inline_sql():
    code, output = _run_cli(
        ["--sql", "SELECT COUNT(*) AS n FROM T1", "--t1-rows", "2000", "--t2-rows", "2000",
         "--t3-rows", "1000", "--nodes", "2"]
    )
    assert code == 0
    assert "feisu> SELECT COUNT(*) AS n FROM T1" in output
    assert "2000" in output
    assert "ms simulated" in output


def test_cli_explain_statement():
    code, output = _run_cli(
        ["--sql", "EXPLAIN SELECT url FROM T1 WHERE click_count > 3",
         "--t1-rows", "2000", "--t2-rows", "2000", "--t3-rows", "1000", "--nodes", "2"]
    )
    assert code == 0
    assert "scan T1" in output
    assert "click_count > 3" in output


def test_cli_script_file(tmp_path):
    script = tmp_path / "queries.sql"
    script.write_text(
        "SELECT COUNT(*) n FROM T1;\nSELECT province, COUNT(*) c FROM T1 GROUP BY province ORDER BY c DESC LIMIT 2;"
    )
    code, output = _run_cli(
        [str(script), "--t1-rows", "2000", "--t2-rows", "2000", "--t3-rows", "1000", "--nodes", "2"]
    )
    assert code == 0
    assert output.count("feisu>") == 2


def test_cli_reports_errors_and_continues():
    code, output = _run_cli(
        ["--sql", "SELECT nope FROM T1", "--sql", "SELECT COUNT(*) n FROM T1",
         "--t1-rows", "2000", "--t2-rows", "2000", "--t3-rows", "1000", "--nodes", "2"]
    )
    assert code == 1
    assert "error:" in output
    assert output.count("feisu>") == 2  # second statement still ran


def test_cli_no_sql_given():
    code, output = _run_cli([])
    assert code == 2
    assert "no SQL" in output


def test_cli_parser_defaults():
    args = build_parser().parse_args([])
    assert args.t1_rows == 8000
    assert args.user == "cli"


# -- EXPLAIN ANALYZE -------------------------------------------------------------


def test_explain_analyze_reports_execution(fresh_cluster):
    fresh_cluster.create_user("ea", admin=True)
    client = FeisuClient(fresh_cluster, "ea")
    text = client.explain_analyze("SELECT COUNT(*) FROM T WHERE c2 > 3")
    assert "execution:" in text
    assert "response:" in text
    assert "slowest task attempts:" in text
    assert "SmartIndex: 0/" in text  # cold run: nothing covered yet
    text2 = client.explain_analyze("SELECT COUNT(*) FROM T WHERE c2 > 3")
    assert "SmartIndex: 0/" not in text2  # warm: covered attempts appear


def test_task_timeline_recorded(fresh_cluster):
    job = fresh_cluster.query_job("SELECT COUNT(*) FROM T WHERE c1 < 50")
    assert len(job.task_timeline) == job.stats.tasks_total
    for t in job.task_timeline:
        assert t.finished_at >= t.started_at >= job.submitted_at
        assert t.worker_id.startswith("leaf-")
        assert not t.backup


def test_timeline_marks_backups(fresh_cluster):
    victim = fresh_cluster.leaves[0]
    fresh_cluster.sim.schedule(0.0005, victim.crash)
    job = fresh_cluster.query_job("SELECT SUM(clicks) FROM T WHERE c1 >= 0")
    if job.stats.backups_launched > 0:
        assert any(t.backup for t in job.task_timeline)
    victim.recover()
