"""Trace replay against the simulated cluster."""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.workload.generator import TimedQuery, WorkloadConfig, WorkloadGenerator
from repro.workload.replay import TraceReplayer


@pytest.fixture()
def cluster():
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    rng = np.random.default_rng(1)
    n = 3000
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
        {"a": rng.integers(0, 20, n), "b": rng.random(n)},
        block_rows=800,
        storage="storage-a",
    )
    return cluster


def _trace():
    return [
        TimedQuery(10.0, "u1", "SELECT COUNT(*) FROM T WHERE a > 5"),
        TimedQuery(20.0, "u2", "SELECT SUM(b) FROM T WHERE a > 5"),
        TimedQuery(30.0, "u1", "SELECT COUNT(*) FROM T WHERE a > 5"),
    ]


def test_replay_honours_arrival_times(cluster):
    replayer = TraceReplayer(cluster)
    report = replayer.replay(_trace())
    assert report.count == 3
    assert report.success_ratio() == 1.0
    # first query submitted at (or after) its trace timestamp
    assert report.outcomes[0].submitted_at >= 10.0
    assert report.outcomes[2].submitted_at >= 30.0
    assert all(o.response_time_s > 0 for o in report.outcomes)


def test_replay_time_compression(cluster):
    replayer = TraceReplayer(cluster, time_compression=10.0)
    report = replayer.replay(_trace())
    assert report.outcomes[0].submitted_at >= 1.0
    assert report.outcomes[0].submitted_at < 10.0


def test_replay_invalid_compression(cluster):
    with pytest.raises(ValueError):
        TraceReplayer(cluster, time_compression=0.0)


def test_replay_creates_users(cluster):
    replayer = TraceReplayer(cluster)
    report = replayer.replay(_trace())
    assert report.success_ratio() == 1.0
    assert "u1" in cluster._credentials and "u2" in cluster._credentials


def test_replay_records_bad_queries(cluster):
    trace = [TimedQuery(1.0, "u", "SELECT nope FROM T")]
    report = TraceReplayer(cluster).replay(trace)
    assert report.count == 0
    assert len(report.errors) == 1
    assert "nope" in report.errors[0]


def test_replay_concurrent_reuses_identical_tasks(cluster):
    # two identical queries arriving in the same instant share their tasks
    trace = [
        TimedQuery(5.0, "u1", "SELECT COUNT(*) FROM T WHERE a > 7"),
        TimedQuery(5.0, "u2", "SELECT COUNT(*) FROM T WHERE a > 7"),
    ]
    report = TraceReplayer(cluster).replay(trace, concurrent=True)
    assert report.count == 2
    reused = sum(o.job.stats.tasks_reused for o in report.outcomes)
    assert reused > 0


def test_replay_concurrent_sessions_overlap(cluster):
    # Same-instant arrivals on disjoint predicates must run as
    # overlapping sessions on the simulated clock: both start at the
    # submit instant and their execution intervals intersect.
    trace = [
        TimedQuery(5.0, "u1", "SELECT COUNT(*) FROM T WHERE a > 3"),
        TimedQuery(5.0, "u2", "SELECT SUM(b) FROM T WHERE a < 9"),
    ]
    report = TraceReplayer(cluster).replay(trace, concurrent=True)
    assert report.count == 2
    jobs = [o.job for o in report.outcomes]
    assert all(o.submitted_at == 5.0 for o in report.outcomes)
    assert all(j.started_at == 5.0 for j in jobs)
    # Overlap: each job starts before the other finishes.
    assert jobs[0].started_at < jobs[1].finished_at
    assert jobs[1].started_at < jobs[0].finished_at


def test_replay_concurrent_collects_out_of_order_completions(cluster):
    # A heavier query submitted first must not block collection of a
    # lighter one that finishes earlier; every outcome is gathered via
    # one completion barrier, in trace order.
    trace = [
        TimedQuery(2.0, "u1", "SELECT SUM(b), COUNT(*) FROM T"),
        TimedQuery(2.5, "u2", "SELECT COUNT(*) FROM T WHERE a = 1"),
    ]
    report = TraceReplayer(cluster).replay(trace, concurrent=True)
    assert report.count == 2
    assert report.success_ratio() == 1.0
    assert [o.query.user for o in report.outcomes] == ["u1", "u2"]
    assert all(o.job.finished_at is not None for o in report.outcomes)


def test_replay_sequential_submitted_at_is_arrival(cluster):
    # Regression: the sequential path once recorded submitted_at AFTER
    # query_job ran the query to completion on the simulated clock.
    report = TraceReplayer(cluster).replay(_trace())
    for outcome, at in zip(report.outcomes, (10.0, 20.0, 30.0)):
        assert outcome.submitted_at == at
        assert outcome.submitted_at < outcome.job.finished_at
        assert outcome.job.submitted_at == outcome.submitted_at


def test_replay_report_percentiles(cluster):
    report = TraceReplayer(cluster).replay(_trace())
    assert report.percentile(0.5) <= report.percentile(0.99)


def test_replay_generated_trace_end_to_end(cluster):
    gen = WorkloadGenerator(
        "T",
        cluster.catalog.get("T").schema,
        WorkloadConfig(num_users=3, think_time_s=50.0, seed=9, session_length=3),
        value_ranges={"a": (0, 20)},
    )
    trace = gen.generate(600.0)[:12]
    report = TraceReplayer(cluster).replay(trace)
    assert report.count == len(trace)
    assert report.success_ratio() == 1.0
