"""Histograms and selectivity estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.stats import ColumnHistogram
from repro.errors import StorageError
from repro.planner.cnf import to_cnf
from repro.planner.selectivity import (
    DEFAULT_CONTAINS,
    atom_selectivity,
    estimate_selectivity,
)
from repro.sql.parser import parse_expression


def _atom(text):
    from repro.planner.cnf import extract_atom

    return extract_atom(parse_expression(text))


# -- histogram construction -----------------------------------------------------


def test_histogram_uniform_halves():
    arr = np.arange(10_000, dtype=np.int64)
    h = ColumnHistogram.build(arr)
    assert h.total == 10_000
    assert h.fraction_le(4999.5) == pytest.approx(0.5, abs=0.05)
    assert h.fraction_le(-1) == 0.0
    assert h.fraction_le(10_000) == 1.0


def test_histogram_constant_column():
    h = ColumnHistogram.build(np.full(100, 7, dtype=np.int64))
    assert h.selectivity("=", 7) == 1.0
    assert h.selectivity("<", 7) == 0.0
    assert h.selectivity(">=", 7) == 1.0


def test_histogram_empty():
    h = ColumnHistogram.build(np.empty(0, dtype=np.int64))
    assert h.total == 0
    assert h.selectivity(">", 1) == 0.0


def test_histogram_rejects_strings():
    with pytest.raises(StorageError):
        ColumnHistogram.build(np.array(["a"], dtype=object))


def test_histogram_equality_uses_distinct():
    arr = np.tile(np.arange(10, dtype=np.int64), 100)
    h = ColumnHistogram.build(arr)
    assert h.selectivity("=", 5) == pytest.approx(0.1, abs=0.02)
    assert h.selectivity("!=", 5) == pytest.approx(0.9, abs=0.02)
    assert h.selectivity("=", 99) == 0.0


def test_histogram_round_trip_dict():
    h = ColumnHistogram.build(np.arange(100, dtype=np.int64))
    back = ColumnHistogram.from_dict(h.to_dict())
    assert back == h


def test_histogram_unknown_op():
    h = ColumnHistogram.build(np.arange(10, dtype=np.int64))
    with pytest.raises(StorageError):
        h.selectivity("~", 1)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), min_size=20, max_size=500),
    st.integers(-1100, 1100),
)
def test_property_histogram_close_to_truth(values, threshold):
    arr = np.array(values, dtype=np.int64)
    h = ColumnHistogram.build(arr)
    actual = float((arr <= threshold).mean())
    # The non-strict estimate may miss mass sitting exactly at the
    # threshold's bin: an equi-width histogram can't resolve inside one
    # bin, so the honest error bound is the largest bin's mass (plus the
    # point mass an "=" estimate covers).
    tolerance = h.max_bin_fraction() + h.selectivity("=", threshold) + 0.05
    estimated = h.selectivity("<=", threshold)
    assert estimated == pytest.approx(actual, abs=tolerance)
    # Strict/non-strict ordering always holds.
    assert h.selectivity("<", threshold) <= estimated + 1e-12


# -- selectivity over plans -------------------------------------------------------


def test_atom_selectivity_with_table(small_cluster):
    table = small_cluster.catalog.get("T")
    # c2 is uniform over 0..9
    sel = atom_selectivity(_atom("c2 > 4"), table)
    assert sel == pytest.approx(0.5, abs=0.1)
    sel_eq = atom_selectivity(_atom("c2 = 3"), table)
    assert sel_eq == pytest.approx(0.1, abs=0.05)


def test_atom_selectivity_contains_default(small_cluster):
    table = small_cluster.catalog.get("T")
    assert atom_selectivity(_atom("url CONTAINS 'x'"), table) == DEFAULT_CONTAINS
    assert atom_selectivity(_atom("NOT (url CONTAINS 'x')"), table) == pytest.approx(
        1 - DEFAULT_CONTAINS
    )


def test_cnf_and_combination(small_cluster):
    table = small_cluster.catalog.get("T")
    cnf = to_cnf(parse_expression("c2 > 4 AND c1 < 50"))
    sel = estimate_selectivity(cnf, table)
    assert sel == pytest.approx(0.25, abs=0.08)


def test_cnf_or_combination(small_cluster):
    table = small_cluster.catalog.get("T")
    cnf = to_cnf(parse_expression("c2 > 4 OR c1 < 50"))
    sel = estimate_selectivity(cnf, table)
    assert sel == pytest.approx(0.75, abs=0.08)


def test_estimate_matches_actual_through_plan(small_cluster):
    from repro.planner.physical import build_plan
    from repro.planner.selectivity import estimate_result_rows
    from repro.sql.analyzer import analyze
    from repro.sql.parser import parse

    sql = "SELECT COUNT(*) FROM T WHERE c2 > 4 AND c1 < 50"
    plan = build_plan(analyze(parse(sql), small_cluster.catalog))
    estimated = estimate_result_rows(plan)
    actual = small_cluster.query(sql).rows()[0][0]
    assert estimated == pytest.approx(actual, rel=0.35)


def test_explain_shows_selectivity(small_cluster):
    text = small_cluster.explain("SELECT COUNT(*) FROM T WHERE c2 > 4")
    assert "estimated selectivity:" in text
    assert "modeled rows" in text


def test_no_table_falls_back_to_defaults():
    assert 0.0 < atom_selectivity(_atom("x > 5"), None) < 1.0
    assert atom_selectivity(_atom("x = 5"), None) == pytest.approx(0.05)
