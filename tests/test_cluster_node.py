"""Leaf server behaviour: slots, storage profiles, SSD cache, crashes."""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, LeafConfig, Schema, DataType


def _cluster(leaf: LeafConfig = LeafConfig(), **kw):
    cfg = FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4, leaf=leaf, **kw)
    cluster = FeisuCluster(cfg)
    n = 3000
    rng = np.random.default_rng(2)
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
        {"a": rng.integers(0, 50, n), "b": rng.random(n)},
        storage="storage-a",
        block_rows=500,
    )
    return cluster


def test_smartindex_disabled_leaf():
    cluster = _cluster(LeafConfig(enable_smartindex=False))
    sql = "SELECT COUNT(*) FROM T WHERE a > 10"
    r1 = cluster.query(sql)
    r2 = cluster.query(sql)
    assert r1.rows() == r2.rows()
    assert r2.stats["index_full_covers"] == 0
    assert cluster.aggregate_index_stats().lookups == 0


def test_fatman_first_byte_latency_slows_queries():
    cluster_hot = _cluster()
    cluster_cold = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4))
    n = 3000
    rng = np.random.default_rng(2)
    cols = {"a": rng.integers(0, 50, n), "b": rng.random(n)}
    schema = Schema.of(a=DataType.INT64, b=DataType.FLOAT64)
    cluster_cold.load_table("T", schema, cols, storage="fatman", block_rows=500)
    hot = cluster_hot.query("SELECT COUNT(*) FROM T WHERE a > 10")
    cold = cluster_cold.query("SELECT COUNT(*) FROM T WHERE a > 10")
    assert hot.rows() == cold.rows()
    assert cold.stats["response_time_s"] > hot.stats["response_time_s"]


def test_fatman_single_slot_serializes_tasks():
    cluster = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=2))
    n = 4000
    cluster.load_table(
        "Cold",
        Schema.of(a=DataType.INT64),
        {"a": np.arange(n)},
        storage="fatman",
        block_rows=500,
    )
    r = cluster.query("SELECT COUNT(*) FROM Cold")
    assert r.rows()[0][0] == n


def test_local_fs_table_scans_from_owner_node():
    cluster = _cluster()
    node = cluster.nodes[3]
    cluster.load_table(
        "L",
        Schema.of(x=DataType.INT64),
        {"x": np.arange(100)},
        storage="localfs",
        block_rows=50,
        node=node,
    )
    r = cluster.query("SELECT COUNT(*) FROM L WHERE x < 10")
    assert r.rows()[0][0] == 10
    # the only replica is the producing node, so it did (some of) the work
    owner_leaf = cluster.leaf_at(node)
    assert owner_leaf.tasks_completed > 0


def test_ssd_cache_hits_on_repeat_scan():
    leaf_cfg = LeafConfig(enable_ssd_cache=True, ssd_admit_preferred_only=False)
    cluster = _cluster(leaf_cfg)
    cluster.query("SELECT SUM(b) FROM T WHERE a > -1")
    misses = sum(lf.ssd_cache.misses for lf in cluster.leaves)
    cluster.query("SELECT SUM(b) FROM T WHERE a > -2")  # different predicate, same blocks
    hits = sum(lf.ssd_cache.hits for lf in cluster.leaves)
    assert misses > 0 and hits > 0


def test_crashed_leaf_rejects_tasks_and_recovers():
    cluster = _cluster()
    leaf = cluster.leaves[0]
    leaf.crash()
    assert not leaf.alive
    leaf.recover()
    assert leaf.alive
    r = cluster.query("SELECT COUNT(*) FROM T")
    assert r.rows()[0][0] == 3000


def test_btree_mode_executes_correctly():
    cluster = _cluster(LeafConfig(enable_smartindex=False, enable_btree=True))
    r1 = cluster.query("SELECT COUNT(*) FROM T WHERE a >= 25")
    cols_a = None
    r2 = cluster.query("SELECT COUNT(*) FROM T WHERE a >= 25")
    assert r1.rows() == r2.rows()
    assert sum(lf.btree_builds for lf in cluster.leaves) > 0


def test_index_memory_accounting_visible():
    cluster = _cluster()
    cluster.query("SELECT COUNT(*) FROM T WHERE a > 10")
    assert cluster.index_memory_used() > 0
    stats = cluster.aggregate_index_stats()
    assert stats.creations > 0
