"""Robustness: the SQL front-end never raises anything but ParseError."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FeisuError, ParseError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=80))
def test_property_tokenizer_total(text):
    """Any input either tokenizes or raises ParseError — nothing else."""
    try:
        tokens = tokenize(text)
    except ParseError:
        return
    assert tokens[-1].type.name == "EOF"


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=120))
def test_property_parser_total(text):
    try:
        parse(text)
    except ParseError:
        pass  # the only acceptable failure mode


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(
    ["SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "GROUP", "BY", "ORDER",
     "LIMIT", "JOIN", "ON", "a", "b", "t", "5", "'x'", "(", ")", ",", ">",
     "<", "=", "*", "+", "-", "CONTAINS", "COUNT", "HAVING"]
), max_size=25))
def test_property_keyword_soup_total(words):
    """Grammar-adjacent token soup: still ParseError-or-parse."""
    try:
        parse(" ".join(words))
    except ParseError:
        pass


def test_moderately_nested_parentheses_ok():
    depth = 40
    text = "SELECT a FROM t WHERE " + "(" * depth + "a > 1" + ")" * depth
    query = parse(text)
    assert query.where is not None


def test_pathological_nesting_rejected_cleanly():
    depth = 500
    text = "SELECT a FROM t WHERE " + "(" * depth + "a > 1" + ")" * depth
    with pytest.raises(ParseError, match="nested deeper"):
        parse(text)


def test_long_conjunction_parses_and_plans(small_cluster):
    preds = " AND ".join(f"(c1 != {i})" for i in range(120))
    r = small_cluster.query(f"SELECT COUNT(*) FROM T WHERE {preds}")
    assert r.num_rows == 1
