"""CNF simplification: domination, equality propagation, contradictions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.cnf import to_cnf
from repro.planner.expressions import Frame, evaluate
from repro.planner.simplify import simplify_cnf
from repro.sql.parser import parse_expression


def _simplify(text):
    return simplify_cnf(to_cnf(parse_expression(text)))


def test_lower_bound_domination():
    s = _simplify("a > 3 AND a > 5")
    assert s.cnf.predicate_keys() == ["a > 5"]
    assert "a > 3" in s.removed


def test_upper_bound_domination():
    s = _simplify("a < 10 AND a <= 4 AND a < 7")
    assert s.cnf.predicate_keys() == ["a <= 4"]


def test_strict_beats_nonstrict_on_tie():
    assert _simplify("a > 5 AND a >= 5").cnf.predicate_keys() == ["a > 5"]
    assert _simplify("a < 5 AND a <= 5").cnf.predicate_keys() == ["a < 5"]


def test_equality_absorbs_consistent_bounds():
    s = _simplify("a = 4 AND a > 3 AND a <= 10 AND a != 7")
    assert s.cnf.predicate_keys() == ["a = 4"]
    assert not s.contradiction


def test_equality_contradiction_with_bounds():
    assert _simplify("a = 4 AND a > 5").contradiction
    assert _simplify("a = 4 AND a != 4").contradiction
    assert _simplify("a = 4 AND a = 5").contradiction


def test_empty_range_contradiction():
    assert _simplify("a > 5 AND a < 3").contradiction
    assert _simplify("a > 5 AND a < 5").contradiction
    assert _simplify("a >= 5 AND a < 5").contradiction
    assert not _simplify("a >= 5 AND a <= 5").contradiction


def test_vacuous_ne_removed():
    s = _simplify("a > 10 AND a != 3")
    assert s.cnf.predicate_keys() == ["a > 10"]


def test_relevant_ne_kept():
    s = _simplify("a > 1 AND a != 3")
    assert sorted(s.cnf.predicate_keys()) == ["a != 3", "a > 1"]


def test_independent_columns_untouched():
    s = _simplify("a > 3 AND b < 2 AND a > 5")
    assert sorted(s.cnf.predicate_keys()) == ["a > 5", "b < 2"]


def test_or_clauses_pass_through():
    s = _simplify("(a > 3 OR b < 2) AND a > 5 AND a > 1")
    keys = s.cnf.predicate_keys()
    assert "a > 5" in keys and "a > 1" not in keys
    assert any(len(c.atoms) == 2 for c in s.cnf.clauses)


def test_contains_pass_through():
    s = _simplify("s CONTAINS 'x' AND s CONTAINS 'x' AND a > 2")
    keys = s.cnf.predicate_keys()
    assert keys.count("s CONTAINS 'x'") == 1  # deduped by clause dedupe
    assert "a > 2" in keys


def test_duplicate_atoms_deduped():
    assert _simplify("a > 3 AND a > 3").cnf.predicate_keys() == ["a > 3"]


def test_string_equality_contradiction():
    from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
    from repro.sql.ast import BinaryOperator

    cnf = ConjunctiveForm(
        [
            Clause((AtomicPredicate("p", BinaryOperator.EQ, "x"),)),
            Clause((AtomicPredicate("p", BinaryOperator.EQ, "y"),)),
        ]
    )
    # string equalities aren't numeric-comparable: pass through untouched
    s = simplify_cnf(cnf)
    assert not s.contradiction
    assert len(s.cnf.clauses) == 2


def test_contradiction_through_full_plan(small_cluster):
    r = small_cluster.query("SELECT COUNT(*) FROM T WHERE c1 > 5 AND c1 < 3")
    assert r.rows() == [(0,)]
    text = small_cluster.explain("SELECT COUNT(*) FROM T WHERE c1 > 5 AND c1 < 3")
    assert "0 tasks" in text


def test_domination_improves_index_reuse(fresh_cluster):
    # Two differently-written drill-downs normalize to one cache key.
    fresh_cluster.query("SELECT COUNT(*) FROM T WHERE c2 > 5")
    r = fresh_cluster.query("SELECT COUNT(*) FROM T WHERE c2 > 3 AND c2 > 5")
    assert r.stats["index_full_covers"] > 0  # `c2 > 3` was dropped, `c2 > 5` hit


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b"]),
            st.sampled_from([">", ">=", "<", "<=", "=", "!="]),
            st.integers(-4, 4),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_property_simplification_preserves_semantics(triples):
    text = " AND ".join(f"({c} {op} {v})" for c, op, v in triples)
    expr = parse_expression(text)
    rng = np.random.default_rng(0)
    frame = Frame.from_columns(
        {"a": rng.integers(-6, 7, 200), "b": rng.integers(-6, 7, 200)}
    )
    original = evaluate(expr, frame).astype(bool)
    s = simplify_cnf(to_cnf(expr))
    if s.contradiction:
        assert not original.any()
        return
    rebuilt_expr = s.cnf.to_expr()
    rebuilt = (
        np.ones(200, dtype=bool)
        if rebuilt_expr is None
        else evaluate(rebuilt_expr, frame).astype(bool)
    )
    assert (original == rebuilt).all()
