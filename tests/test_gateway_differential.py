"""Differential: concurrent gateway serving vs the sequential path (S52).

Twin clusters load identical data.  One serves a query batch through the
gateway — many sessions, interleaved tenants, everything in flight at
once under admission control — while the twin runs the same batch
sequentially through ``cluster.query``.  Row sets must match exactly per
query: admission queueing, fair-share reordering and slot contention may
change *when* a query runs, never *what it answers*.
"""

import random

from repro import FeisuCluster, FeisuConfig
from repro.gateway import GatewayConfig, QueryStatus, TenantPolicy
from tests.conftest import CLICKS_SCHEMA, make_clicks_columns


def _build(gateway=None):
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1, racks_per_datacenter=2, nodes_per_rack=4, gateway=gateway
        )
    )
    cluster.load_table(
        "T", CLICKS_SCHEMA, make_clicks_columns(4000, seed=23),
        storage="storage-a", block_rows=800,
    )
    for user in ("ads-svc", "search-svc"):
        cluster.create_user(user, domains=["*"])
        cluster.acl.grant(user, "T")
    return cluster


def _query_batch(count=36, seed=17):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        preds = []
        for _ in range(rng.randint(0, 2)):
            col = rng.choice(["c1", "c2"])
            op = rng.choice([">", ">=", "<", "<=", "="])
            preds.append(f"{col} {op} {rng.randint(0, 12 if col == 'c2' else 100)}")
        where = (" WHERE " + " AND ".join(f"({p})" for p in preds)) if preds else ""
        shape = rng.random()
        if shape < 0.4:
            sql = f"SELECT COUNT(*) AS n FROM T{where}"
        elif shape < 0.7:
            sql = f"SELECT c2 AS k, COUNT(*) AS n, SUM(c1) AS s FROM T{where} GROUP BY k ORDER BY k"
        else:
            sql = f"SELECT c1, c2 FROM T{where}"
        queries.append(sql)
    return queries


def test_gateway_answers_match_sequential_path():
    queries = _query_batch()

    sequential = _build(gateway=None)
    expected = [
        sorted(sequential.query(sql, user="ads-svc").rows()) for sql in queries
    ]

    gated = _build(
        gateway=GatewayConfig(
            total_slots=4,
            default_policy=TenantPolicy(max_concurrent=3, max_queued=256),
        )
    )
    gateway = gated.gateway
    sessions = [
        gateway.open_session("ads-svc", tenant="ads"),
        gateway.open_session("search-svc", tenant="search"),
        gateway.open_session("ads-svc", tenant="ads"),
    ]
    # Everything in flight at once, round-robined across sessions.
    handles = [sessions[i % len(sessions)].submit(sql) for i, sql in enumerate(queries)]
    while gateway.in_flight() > 0:
        assert gated.sim.step(), "gateway deadlocked mid-batch"

    assert all(h.status is QueryStatus.SUCCEEDED for h in handles)
    for sql, handle, want in zip(queries, handles, expected):
        got = sorted(handle.result().rows())
        assert got == want, f"gateway answer diverged for {sql!r}"
    # Concurrency really happened: some query waited behind the slots.
    assert any(h.queue_wait_s > 0 for h in handles)
