"""Cross-domain directory: schema/rights replication across datacenters."""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.cluster.domains import CrossDomainDirectory
from repro.sim.events import Simulator
from repro.sim.netmodel import NetworkTopology, TopologySpec


def _directory(datacenters=3, sync_period_s=30.0):
    sim = Simulator()
    net = NetworkTopology(sim, TopologySpec(datacenters, 2, 2))
    return sim, CrossDomainDirectory(sim, net, datacenters, sync_period_s=sync_period_s)


def test_home_datacenter_sees_updates_immediately():
    _sim, directory = _directory()
    directory.publish_table("T", {"a": "int64"})
    assert directory.lookup_table(0, "T") == {"a": "int64"}  # primary's dc
    assert directory.lookup_table(1, "T") is None  # remote: not yet synced
    assert directory.lag(1) == 1 and directory.lag(0) == 0


def test_sync_round_converges_all_replicas():
    sim, directory = _directory()
    directory.publish_table("T", {"a": "int64"})
    directory.publish_grant("u", "T")
    assert not directory.converged()
    shipped = sim.run_until_complete(sim.process(directory.sync_once()))
    assert shipped == 4  # 2 updates x 2 remote replicas
    assert directory.converged()
    assert directory.lookup_table(2, "T") == {"a": "int64"}
    assert directory.can_read(2, "u", "T")


def test_updates_apply_in_order_revoke_after_grant():
    sim, directory = _directory()
    directory.publish_grant("u", "T")
    directory.publish_revoke("u", "T")
    sim.run_until_complete(sim.process(directory.sync_once()))
    assert not directory.can_read(1, "u", "T")


def test_background_loop_converges():
    sim, directory = _directory(sync_period_s=10.0)
    directory.start()
    directory.publish_table("T", {"x": "string"})
    sim.run(until=25.0)
    assert directory.converged()
    assert directory.sync_rounds >= 2


def test_sync_charges_control_traffic():
    sim, directory = _directory()
    for i in range(10):
        directory.publish_table(f"T{i}", {"a": "int64"})
    net_links_before = 0
    sim.run_until_complete(sim.process(directory.sync_once()))
    total = sum(ln.bytes_carried for ln in directory.net.links())
    assert total >= 512 * 10  # per-update wire cost to remote dcs


def test_incremental_sync_only_ships_missing():
    sim, directory = _directory()
    directory.publish_table("A", {"a": "int64"})
    sim.run_until_complete(sim.process(directory.sync_once()))
    directory.publish_table("B", {"b": "int64"})
    shipped = sim.run_until_complete(sim.process(directory.sync_once()))
    assert shipped == 2  # only the new update, to the 2 remote dcs


def test_feisu_cluster_publishes_metadata():
    cluster = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=2))
    cluster.load_table(
        "T", Schema.of(a=DataType.INT64), {"a": np.arange(100)}, storage="storage-a"
    )
    cluster.create_user("geo", tables=["T"])
    directory = cluster.domain_directory
    # home dc sees everything immediately
    assert directory.lookup_table(0, "T") == {"a": "int64"}
    assert directory.can_read(0, "geo", "T")
    # remote dc converges after the sync period
    cluster.sim.run(until=cluster.sim.now + 2 * directory.sync_period_s)
    assert directory.lookup_table(1, "T") == {"a": "int64"}
    assert directory.converged()
