"""Tokenizer behaviour."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import TokenType, tokenize


def _texts(sql):
    return [(t.type, t.text) for t in tokenize(sql) if t.type is not TokenType.EOF]


def test_keywords_case_insensitive():
    tokens = _texts("select From WHERE")
    assert tokens == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.KEYWORD, "FROM"),
        (TokenType.KEYWORD, "WHERE"),
    ]


def test_identifiers_preserve_case():
    assert _texts("colName")[0] == (TokenType.IDENTIFIER, "colName")


def test_numbers():
    assert _texts("42")[0] == (TokenType.NUMBER, "42")
    assert _texts("3.14")[0] == (TokenType.NUMBER, "3.14")
    assert _texts("1e5")[0] == (TokenType.NUMBER, "1e5")
    assert _texts("2.5E-3")[0] == (TokenType.NUMBER, "2.5E-3")


def test_string_literals_with_escapes():
    assert _texts("'hello'")[0] == (TokenType.STRING, "hello")
    assert _texts("'it''s'")[0] == (TokenType.STRING, "it's")
    assert _texts("''")[0] == (TokenType.STRING, "")


def test_unterminated_string():
    with pytest.raises(ParseError, match="unterminated"):
        tokenize("'oops")


def test_operators_including_two_char():
    texts = _texts("a <= b >= c != d <> e = f < g > h")
    operator_texts = [x for t, x in texts if t is TokenType.OPERATOR]
    assert operator_texts == ["<=", ">=", "!=", "!=", "=", "<", ">"]


def test_arithmetic_and_punct():
    texts = _texts("(a + b) * c / d % e, f;")
    assert (TokenType.PUNCT, "(") in texts
    assert (TokenType.OPERATOR, "%") in texts
    assert (TokenType.PUNCT, ";") in texts


def test_line_comments_skipped():
    texts = _texts("SELECT -- comment here\n x")
    assert texts == [(TokenType.KEYWORD, "SELECT"), (TokenType.IDENTIFIER, "x")]


def test_unexpected_character_position():
    with pytest.raises(ParseError) as err:
        tokenize("a @ b")
    assert err.value.position == 2


def test_eof_token_always_present():
    tokens = tokenize("")
    assert len(tokens) == 1 and tokens[0].type is TokenType.EOF


def test_contains_and_within_are_keywords():
    texts = _texts("url CONTAINS 'x' WITHIN y")
    assert (TokenType.KEYWORD, "CONTAINS") in texts
    assert (TokenType.KEYWORD, "WITHIN") in texts


def test_dotted_identifier_tokens():
    texts = _texts("t.col")
    assert texts == [
        (TokenType.IDENTIFIER, "t"),
        (TokenType.PUNCT, "."),
        (TokenType.IDENTIFIER, "col"),
    ]
