"""Delta encoding, replica repair, rate limiting, index advisor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.encoding import DeltaEncoding, choose_encoding
from repro.columnar.schema import DataType
from repro.errors import QuotaExceededError, StorageError
from repro.index.advisor import IndexAdvisor, apply_recommendations
from repro.security.acl import RateLimiter
from repro.sim.events import Simulator
from repro.sim.netmodel import NetworkTopology, TopologySpec
from repro.storage.maintenance import ReplicaRepairer
from repro.storage.systems import DistributedFS


# -- delta encoding ----------------------------------------------------------


def test_delta_round_trip_sorted():
    codec = DeltaEncoding()
    arr = np.arange(0, 10_000, 3, dtype=np.int64)
    out = codec.decode(codec.encode(arr), len(arr))
    assert (out == arr).all()


def test_delta_round_trip_unsorted():
    codec = DeltaEncoding()
    arr = np.array([5, -3, 10**15, -(10**15), 0], dtype=np.int64)
    assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


def test_delta_empty_and_singleton():
    codec = DeltaEncoding()
    for arr in (np.empty(0, dtype=np.int64), np.array([42], dtype=np.int64)):
        assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


def test_delta_rejects_floats():
    with pytest.raises(StorageError):
        DeltaEncoding().encode(np.array([1.5]))


def test_choose_encoding_picks_delta_for_arithmetic_sequence():
    arr = np.arange(100_000, 200_000, dtype=np.int64)  # high-cardinality, sorted
    codec = choose_encoding(arr, DataType.INT64)
    assert codec.name == "delta"
    assert len(codec.encode(arr)) < arr.nbytes / 100


def test_choose_encoding_avoids_delta_for_noise():
    rng = np.random.default_rng(2)
    arr = rng.integers(-(2**62), 2**62, 4000).astype(np.int64)
    assert choose_encoding(arr, DataType.INT64).name == "plain"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=300))
def test_property_delta_round_trip_with_overflow(values):
    codec = DeltaEncoding()
    arr = np.array(values, dtype=np.int64)
    assert (codec.decode(codec.encode(arr), len(arr)) == arr).all()


# -- replica repair -------------------------------------------------------------


def _repair_env():
    sim = Simulator()
    spec = TopologySpec(2, 2, 4)
    net = NetworkTopology(sim, spec)
    fs = DistributedFS(spec.addresses(), seed=5)
    return sim, net, fs


def test_repair_restores_replication():
    sim, net, fs = _repair_env()
    fs.write("/f", b"x" * 1000)
    fs.drop_replica("/f", fs.locations("/f")[0])
    assert len(fs.locations("/f")) == 2
    repairer = ReplicaRepairer(sim, net, fs)
    report = sim.run_until_complete(sim.process(repairer.repair_once()))
    assert report.repairs_done == 1
    assert report.bytes_copied == 1000
    assert len(fs.locations("/f")) == 3
    assert len(set(fs.locations("/f"))) == 3  # distinct nodes


def test_repair_noop_when_healthy():
    sim, net, fs = _repair_env()
    fs.write("/f", b"data")
    report = sim.run_until_complete(sim.process(repairer_once(sim, net, fs)))
    assert report.under_replicated == 0 and report.repairs_done == 0


def repairer_once(sim, net, fs):
    return ReplicaRepairer(sim, net, fs).repair_once()


def test_repair_reports_unrepairable():
    sim, net, fs = _repair_env()
    fs.write("/f", b"data")
    for addr in list(fs.locations("/f")):
        fs.drop_replica("/f", addr)  # all replicas gone
    repairer = ReplicaRepairer(sim, net, fs)
    report = sim.run_until_complete(sim.process(repairer.repair_once()))
    assert report.unrepairable == ["/f"]


def test_repair_background_loop():
    sim, net, fs = _repair_env()
    fs.write("/f", b"x" * 100)
    fs.drop_replica("/f", fs.locations("/f")[0])
    repairer = ReplicaRepairer(sim, net, fs, scan_period_s=10.0)
    repairer.start()
    sim.run(until=25.0)
    assert repairer.total_repairs >= 1
    assert len(fs.locations("/f")) == 3


def test_repair_charges_write_traffic():
    sim, net, fs = _repair_env()
    fs.write("/f", b"x" * 10_000)
    fs.drop_replica("/f", fs.locations("/f")[0])
    sim.run_until_complete(sim.process(ReplicaRepairer(sim, net, fs).repair_once()))
    assert sum(ln.bytes_carried for ln in net.links()) >= 10_000


# -- rate limiting -----------------------------------------------------------------


def test_rate_limiter_burst_then_reject():
    rl = RateLimiter(rate_per_s=1.0, burst=3)
    assert all(rl.try_acquire("u", 0.0) for _ in range(3))
    assert not rl.try_acquire("u", 0.0)
    assert rl.rejections == 1


def test_rate_limiter_refills_over_time():
    rl = RateLimiter(rate_per_s=2.0, burst=2)
    rl.try_acquire("u", 0.0)
    rl.try_acquire("u", 0.0)
    assert not rl.try_acquire("u", 0.1)
    assert rl.try_acquire("u", 1.0)  # ~1.8 tokens accrued


def test_rate_limiter_per_user_isolation():
    rl = RateLimiter(rate_per_s=1.0, burst=1)
    assert rl.try_acquire("a", 0.0)
    assert rl.try_acquire("b", 0.0)  # b unaffected by a's spend
    assert not rl.try_acquire("a", 0.0)


def test_rate_limiter_check_raises():
    rl = RateLimiter(rate_per_s=1.0, burst=1)
    rl.check("u", 0.0)
    with pytest.raises(QuotaExceededError, match="rate limit"):
        rl.check("u", 0.0)


def test_rate_limiter_validation():
    with pytest.raises(ValueError):
        RateLimiter(rate_per_s=0.0)
    with pytest.raises(ValueError):
        RateLimiter(burst=0)


def test_entry_guard_rate_limit_end_to_end(fresh_cluster):
    fresh_cluster.entry_guard.rate_limiter = RateLimiter(rate_per_s=0.001, burst=2)
    fresh_cluster.query("SELECT COUNT(*) FROM T")
    fresh_cluster.query("SELECT COUNT(*) FROM T")
    with pytest.raises(QuotaExceededError, match="rate limit"):
        fresh_cluster.query("SELECT COUNT(*) FROM T")


# -- index advisor -------------------------------------------------------------------


def test_advisor_ranks_by_benefit(fresh_cluster):
    from repro.client import FeisuClient

    fresh_cluster.create_user("adv", admin=True)
    client = FeisuClient(fresh_cluster, "adv")
    for _ in range(4):
        client.query("SELECT COUNT(*) FROM T WHERE url CONTAINS 'site3'")  # expensive, frequent
    for _ in range(2):
        client.query("SELECT COUNT(*) FROM T WHERE c2 = 1")  # cheap, less frequent
    client.query("SELECT COUNT(*) FROM T WHERE c1 = 99")  # once: below threshold

    advisor = IndexAdvisor(fresh_cluster.catalog)
    recs = advisor.recommend_for_user(client.history, "adv", top=5)
    keys = [r.predicate_key for r in recs]
    assert keys[0] == "url CONTAINS 'site3'"  # costliest + most repeated
    assert "c2 = 1" in keys
    assert "c1 = 99" not in keys  # min_repetitions filter
    assert all(r.score >= 0 for r in recs)
    assert recs[0].repetitions == 4


def test_advisor_apply_pins_everywhere(fresh_cluster):
    from repro.client import FeisuClient

    fresh_cluster.create_user("adv2", admin=True)
    client = FeisuClient(fresh_cluster, "adv2")
    for _ in range(3):
        client.query("SELECT COUNT(*) FROM T WHERE c2 > 4")
    advisor = IndexAdvisor(fresh_cluster.catalog)
    recs = advisor.recommend_for_user(client.history, "adv2")
    keys = apply_recommendations(fresh_cluster, recs)
    assert "c2 > 4" in keys
    for leaf in fresh_cluster.leaves:
        assert "c2 > 4" in leaf.index_manager._preferred_predicates  # noqa: SLF001


def test_advisor_handles_unknown_table():
    from repro.columnar.table import Catalog

    advisor = IndexAdvisor(Catalog())

    class FakeEntry:
        tables = ("ghost",)
        predicate_keys = ("x > 1",)

    recs = advisor.recommend([FakeEntry(), FakeEntry()])
    assert recs[0].saved_seconds_per_use == 0.0
