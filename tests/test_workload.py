"""Workload generation, datasets, trace analysis (§IV-A / §VI-A)."""

import numpy as np
import pytest

from repro.sql.parser import parse
from repro.workload.analysis import (
    keyword_frequency,
    repeated_columns_by_span,
    same_predicate_ratio_by_span,
    scan_query_share,
)
from repro.workload.datasets import (
    PAPER_ROWS,
    default_specs,
    log_schema,
    synthesize,
    webpage_schema,
)
from repro.workload.generator import (
    TimedQuery,
    WorkloadConfig,
    WorkloadGenerator,
    scan_query_stream,
)


def test_log_schema_field_count():
    assert len(log_schema(200)) == 200
    assert len(log_schema(24)) == 24


def test_webpage_schema_subset_of_log_schema():
    t3 = webpage_schema(57)
    t1 = log_schema(200)
    assert len(t3) == 57
    assert t3.is_subset_of(t1)


def test_default_specs_scale_factors():
    specs = {s.name: s for s in default_specs()}
    assert specs["T1"].scale_factor == PAPER_ROWS["T1"] / specs["T1"].rows
    assert specs["T2"].rows > specs["T1"].rows > specs["T3"].rows
    assert specs["T2"].storage == "storage-b"
    assert specs["T1"].storage == specs["T3"].storage == "storage-a"


def test_synthesize_columns_match_schema():
    spec = default_specs(t1_rows=500, num_fields=15)[0]
    schema, columns = synthesize(spec)
    assert set(columns) == set(schema.names)
    assert all(len(v) == 500 for v in columns.values())
    assert columns["position"].min() >= 1 and columns["position"].max() <= 10


def test_synthesize_deterministic():
    spec = default_specs(t1_rows=200)[0]
    _, a = synthesize(spec)
    _, b = synthesize(spec)
    assert (a["click_count"] == b["click_count"]).all()


def test_generator_queries_parse_and_reference_table():
    gen = _generator()
    log = gen.generate(6 * 3600)
    assert len(log) > 50
    for q in log[:100]:
        parsed = parse(q.sql)
        assert parsed.tables[0].name == "T1"
    assert all(log[i].at_s <= log[i + 1].at_s for i in range(len(log) - 1))


def _generator(reuse=0.8, seed=1):
    schema = log_schema(12)
    return WorkloadGenerator(
        "T1",
        schema,
        WorkloadConfig(num_users=8, reuse_probability=reuse, seed=seed),
        value_ranges={"click_count": (0, 30), "position": (1, 10)},
        contains_values={"url": ["site1", "site2"], "query_text": ["music", "news"]},
    )


def test_similarity_grows_with_reuse_probability():
    low = _generator(reuse=0.05, seed=2).generate(12 * 3600)
    high = _generator(reuse=0.95, seed=2).generate(12 * 3600)
    spans = [2 * 3600.0]
    r_low = same_predicate_ratio_by_span(low[:250], spans)[spans[0]]
    r_high = same_predicate_ratio_by_span(high[:250], spans)[spans[0]]
    assert r_high > r_low


def test_repeated_columns_grows_with_span():
    log = _generator(seed=3).generate(24 * 3600)[:400]
    spans = [1800.0, 2 * 3600.0, 8 * 3600.0]
    result = repeated_columns_by_span(log, spans)
    assert result[1800.0] <= result[2 * 3600.0] <= result[8 * 3600.0]
    assert result[8 * 3600.0] > 0


def test_keyword_frequency_counts():
    freq = keyword_frequency(
        ["SELECT COUNT(*) FROM t WHERE a > 1", "SELECT b FROM t WHERE s CONTAINS 'x'"]
    )
    assert freq["SELECT"] == 2
    assert freq["WHERE"] == 2
    assert freq["COUNT"] == 1
    assert freq["CONTAINS"] == 1


def test_keyword_frequency_skips_unparseable():
    assert keyword_frequency(["'unterminated"]) == {}


def test_scan_query_share():
    sqls = [
        "SELECT a FROM t",
        "SELECT COUNT(*) FROM t WHERE a > 1",
        "SELECT a FROM t JOIN u ON t.a = u.a",
    ]
    assert scan_query_share(sqls) == pytest.approx(2 / 3)


def test_scan_query_stream_shapes():
    queries = scan_query_stream(
        "T1", ["a", "b", "c"], (0, 20), count=200, contains_column="url",
        contains_values=["site1"],
    )
    assert len(queries) == 200
    for q in queries:
        parsed = parse(q)
        assert parsed.where is not None
    # pooled predicates repeat across queries
    from repro.planner.cnf import to_cnf

    keys = [tuple(sorted(a.key for a in to_cnf(parse(q).where).atoms)) for q in queries]
    flat = [k for group in keys for k in group]
    assert len(set(flat)) < len(flat) / 2  # heavy reuse


def test_windows_need_two_queries():
    lone = [TimedQuery(0.0, "u", "SELECT a FROM t WHERE a > 1")]
    assert same_predicate_ratio_by_span(lone, [60.0])[60.0] == 0.0
