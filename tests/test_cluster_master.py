"""Integration tests through the full cluster: admission, execution,
fault tolerance, task reuse, partial results."""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, JobOptions
from repro.cluster.jobs import JobStatus
from repro.errors import AccessDeniedError, AnalysisError, QueryTimeout
from repro.sim.events import Simulator


def test_count_matches_reference(small_cluster):
    cols = small_cluster._test_columns
    r = small_cluster.query("SELECT COUNT(*) FROM T WHERE c1 < 50")
    assert r.rows()[0][0] == int((cols["c1"] < 50).sum())
    assert r.stats["response_time_s"] > 0


def test_group_by_join_through_cluster(small_cluster):
    cols = small_cluster._test_columns
    r = small_cluster.query(
        "SELECT label, COUNT(*) n FROM T JOIN D ON T.c2 = D.c2 "
        "GROUP BY label ORDER BY label LIMIT 3"
    )
    counts = np.bincount(cols["c2"], minlength=10)
    assert r.rows() == [(f"grp{i}", int(counts[i])) for i in range(3)]


def test_unknown_user_denied(small_cluster):
    with pytest.raises(AccessDeniedError):
        small_cluster.query("SELECT COUNT(*) FROM T", user="nobody")


def test_granted_user_allowed(small_cluster):
    small_cluster.create_user("bob", tables=["T"])
    r = small_cluster.query("SELECT COUNT(*) FROM T", user="bob")
    assert r.num_rows == 1


def test_granted_user_denied_other_table(small_cluster):
    small_cluster.create_user("carol", tables=["T"])
    with pytest.raises(AccessDeniedError):
        small_cluster.query("SELECT COUNT(*) FROM D", user="carol")


def test_bad_sql_raises_before_running(small_cluster):
    with pytest.raises(AnalysisError):
        small_cluster.query("SELECT missing_col FROM T")


def test_repeat_query_faster_with_smartindex(fresh_cluster):
    sql = "SELECT COUNT(*) FROM T WHERE c2 > 2 AND c2 <= 8"
    r1 = fresh_cluster.query(sql)
    r2 = fresh_cluster.query(sql)
    assert r1.rows() == r2.rows()
    assert r2.stats["index_full_covers"] > 0
    assert r2.stats["response_time_s"] < r1.stats["response_time_s"]


def test_complement_rewrite_through_cluster(fresh_cluster):
    cols = fresh_cluster._test_columns
    expected = int(((cols["c2"] > 2) & (cols["c2"] <= 8)).sum())
    r1 = fresh_cluster.query("SELECT COUNT(*) FROM T WHERE c2 > 2 AND c2 <= 8")
    r2 = fresh_cluster.query("SELECT COUNT(*) FROM T WHERE c2 > 2 AND NOT (c2 > 8)")
    assert r1.rows()[0][0] == expected == r2.rows()[0][0]
    assert r2.stats["index_full_covers"] > 0


def test_concurrent_identical_tasks_reused(fresh_cluster):
    sql = "SELECT COUNT(*) FROM T WHERE c1 >= 10"
    job1, done1 = fresh_cluster.submit(sql)
    job2, done2 = fresh_cluster.submit(sql)
    fresh_cluster.sim.run_until_complete(done1)
    fresh_cluster.sim.run_until_complete(done2)
    assert job1.result.rows() == job2.result.rows()
    assert job2.stats.tasks_reused == job2.stats.tasks_total
    assert fresh_cluster.master.job_manager.reuse_hits_running > 0


def test_leaf_crash_recovered_by_backup(fresh_cluster):
    # Kill a leaf holding data; the supervisor must reroute its tasks.
    victim = fresh_cluster.leaves[1]
    victim.crash()
    cols = fresh_cluster._test_columns
    r = fresh_cluster.query("SELECT COUNT(*) FROM T")
    assert r.rows()[0][0] == len(cols["c1"])


def test_all_leaves_down_fails(fresh_cluster):
    for leaf in fresh_cluster.leaves:
        leaf.crash()
    # Scheduling still sees them alive until heartbeats lapse; crash-fail
    # then exhausts every candidate.
    job = fresh_cluster.query_job("SELECT COUNT(*) FROM T")
    assert job.status in (JobStatus.FAILED, JobStatus.TIMED_OUT) or job.stats.tasks_failed > 0


def test_deadline_returns_partial_or_times_out(fresh_cluster):
    options = JobOptions(max_time_s=1e-6, min_processed_ratio=1.0)
    job = fresh_cluster.query_job("SELECT COUNT(*) FROM T", options=options)
    assert job.status is JobStatus.TIMED_OUT
    assert isinstance(job.error, QueryTimeout)


def test_deadline_with_tolerant_ratio_gives_partial(fresh_cluster):
    options = JobOptions(max_time_s=1e-6, min_processed_ratio=0.0)
    job = fresh_cluster.query_job("SELECT COUNT(*) FROM T", options=options)
    assert job.status is JobStatus.SUCCEEDED
    assert job.result.processed_ratio < 1.0


def test_early_return_at_ratio(fresh_cluster):
    options = JobOptions(min_processed_ratio=0.5)
    job = fresh_cluster.query_job("SELECT COUNT(*) FROM T", options=options)
    assert job.status is JobStatus.SUCCEEDED
    assert 0.0 < job.result.processed_ratio <= 1.0


def test_quota_enforced(fresh_cluster):
    from repro.security.acl import Quota

    fresh_cluster.create_user("limited", admin=True)
    fresh_cluster.quota.set_quota("limited", Quota(max_queries_per_day=1))
    fresh_cluster.query("SELECT COUNT(*) FROM T", user="limited")
    from repro.errors import QuotaExceededError

    with pytest.raises(QuotaExceededError):
        fresh_cluster.query("SELECT COUNT(*) FROM T", user="limited")


def test_locality_scheduling_prefers_replicas(fresh_cluster):
    fresh_cluster.query("SELECT COUNT(*) FROM T WHERE c1 > 5")
    sched = fresh_cluster.scheduler
    assert sched.placements_local > 0
    assert sched.placements_local >= sched.placements_remote


def test_heartbeats_flow(fresh_cluster):
    fresh_cluster.sim.run(until=30.0)
    assert fresh_cluster.cluster_manager.heartbeats_received > 0


def test_pruned_empty_plan_succeeds(small_cluster):
    r = small_cluster.query("SELECT COUNT(*) FROM T WHERE c1 > 100000")
    assert r.rows()[0][0] == 0


def test_stats_surface(small_cluster):
    r = small_cluster.query("SELECT COUNT(*) FROM T WHERE c2 = 1")
    for key in ("io_bytes_modeled", "tasks_total", "response_time_s"):
        assert key in r.stats
