"""Per-query trace spans, EXPLAIN ANALYZE and the metrics time series (S47)."""

from __future__ import annotations

import io
import json

import pytest

from repro.client.cli import main
from repro.client.client import FeisuClient
from repro.cluster.jobs import JobOptions
from repro.obs.trace import Span, Tracer
from repro.sql.statements import classify_statement

JOIN_SQL = (
    "SELECT label, COUNT(*) n, SUM(clicks) s FROM T JOIN D ON T.c2 = D.c2 "
    "WHERE c1 < 60 GROUP BY label"
)


def _traced_job(cluster, sql=JOIN_SQL):
    return cluster.query_job(sql, options=JobOptions(trace=True))


# -- span-tree invariants -----------------------------------------------------


def test_tracing_is_off_by_default(small_cluster):
    job = small_cluster.query_job("SELECT COUNT(*) FROM T")
    assert job.trace is None


def test_root_span_covers_the_job_exactly(small_cluster):
    job = _traced_job(small_cluster)
    tracer = job.trace
    assert tracer is not None and tracer.root is not None
    assert tracer.root.name == "job"
    assert tracer.root.start_s == pytest.approx(job.submitted_at)
    assert tracer.root.end_s == pytest.approx(job.finished_at)
    assert tracer.root.duration_s == pytest.approx(job.response_time_s)
    assert tracer.root.tags["status"] == "succeeded"
    assert tracer.root.tags["sql"] == JOIN_SQL


def test_every_span_is_finished_and_nested_within_its_parent(small_cluster):
    job = _traced_job(small_cluster)

    def check(span: Span) -> None:
        assert span.end_s is not None, f"{span.name} left open"
        assert span.end_s >= span.start_s
        for child in span.children:
            assert child.start_s >= span.start_s - 1e-9, (span.name, child.name)
            assert child.end_s <= span.end_s + 1e-9, (span.name, child.name)
            check(child)

    check(job.trace.root)


def test_expected_span_names_for_join_query(small_cluster):
    job = _traced_job(small_cluster)
    totals = job.trace.totals_by_name()
    tasks = len(job.plan.tasks)
    assert totals["job"]["count"] == 1
    assert totals["fetch_broadcasts"]["count"] == 1
    for name in ("dispatch", "queue_wait", "index_probe", "scan", "aggregate", "result_return"):
        assert totals[name]["count"] >= tasks, f"missing {name} spans"
    attempts = job.trace.find("task.attempt0")
    assert len(attempts) == tasks
    for span in attempts:
        assert "worker" in span.tags and "task_id" in span.tags
        assert isinstance(span.tags["data_local"], bool)
        assert span.tags["backup"] is False


def test_bytes_are_tagged_per_traffic_class(small_cluster):
    job = _traced_job(small_cluster)
    by_class = job.trace.bytes_by_class()
    # Dispatch is CONTROL, broadcast fetch + result return are READ.
    assert by_class.get("control", 0) > 0
    assert by_class.get("read", 0) > 0
    for value in by_class.values():
        assert value >= 0


def test_index_probe_spans_record_cover_outcomes(fresh_cluster):
    sql = "SELECT COUNT(*) FROM T WHERE c1 < 50"
    cold = _traced_job(fresh_cluster, sql)
    warm = _traced_job(fresh_cluster, sql)
    cold_hits = cold.trace.tag_sum("atom_hits", "index_probe")
    warm_hits = warm.trace.tag_sum("atom_hits", "index_probe")
    assert cold_hits == 0, "first run cannot hit the index"
    assert warm_hits > 0, "second identical run should hit built entries"
    assert any(s.tags.get("full_cover") for s in warm.trace.find("index_probe"))


# -- export / round-trip ------------------------------------------------------


def test_export_json_round_trips(small_cluster):
    job = _traced_job(small_cluster)
    exported = job.trace.export()
    text = json.dumps(exported, sort_keys=True)  # must not raise
    restored = Tracer.from_export(json.loads(text))
    assert restored.job_id == job.trace.job_id
    assert restored.export() == exported
    assert restored.span_count == job.trace.span_count
    assert restored.totals_by_name() == job.trace.totals_by_name()


def test_export_json_helper_matches_export(small_cluster):
    job = _traced_job(small_cluster)
    assert json.loads(job.trace.export_json()) == json.loads(
        json.dumps(job.trace.export())
    )


# -- EXPLAIN ANALYZE ----------------------------------------------------------


def test_explain_analyze_annotates_each_operator(small_cluster):
    client = FeisuClient(small_cluster, "analyst")
    text = client.explain_analyze(JOIN_SQL)
    # Plan skeleton with actuals interleaved under each operator.
    assert "scan T" in text
    assert "actual:" in text and "attempts" in text
    assert "actual index:" in text and "probes" in text
    assert "actual queue wait:" in text
    assert "broadcast join [INNER] D" in text
    assert "shipped" in text  # broadcast actual line
    assert "partial-aggregate CPU" in text
    # Execution footer: response, phases, traffic, stragglers.
    assert "execution:" in text
    assert "response:" in text and "simulated" in text
    assert "phase scan:" in text
    assert "traffic:" in text
    assert "slowest task attempts:" in text


def test_explain_analyze_shows_rows_in_and_out(small_cluster):
    client = FeisuClient(small_cluster, "analyst")
    text = client.explain_analyze("SELECT COUNT(*) FROM T WHERE c1 < 10")
    line = next(l for l in text.splitlines() if "rows" in l and "->" in l)
    left, right = line.split("rows")[1].split("->")
    assert int(left.strip().replace(",", "")) >= int(right.strip().replace(",", ""))


def test_explain_analyze_does_not_leak_tracing_into_later_queries(small_cluster):
    client = FeisuClient(small_cluster, "analyst")
    client.explain_analyze("SELECT COUNT(*) FROM T")
    job = small_cluster.query_job("SELECT COUNT(*) FROM T")
    assert job.trace is None


# -- statement classification -------------------------------------------------


def test_classify_statement_modes():
    assert classify_statement("SELECT 1 FROM T") == ("query", "SELECT 1 FROM T")
    assert classify_statement("  explain SELECT c1 FROM T") == ("explain", "SELECT c1 FROM T")
    assert classify_statement("EXPLAIN ANALYZE SELECT c1 FROM T") == (
        "explain_analyze",
        "SELECT c1 FROM T",
    )
    assert classify_statement("Explain   Analyze\n SELECT 1 FROM T")[0] == "explain_analyze"
    assert classify_statement("EXPLAIN") == ("explain", "")
    assert classify_statement("") == ("query", "")


def test_cli_explain_analyze_statement():
    out = io.StringIO()
    code = main(
        ["--sql", "EXPLAIN ANALYZE SELECT province, COUNT(*) FROM T1 GROUP BY province",
         "--t1-rows", "2000", "--t2-rows", "2000", "--t3-rows", "1000", "--nodes", "2"],
        stdout=out,
    )
    output = out.getvalue()
    assert code == 0
    assert "actual:" in output
    assert "execution:" in output
    assert "slowest task attempts:" in output


# -- metrics time series ------------------------------------------------------


def test_metrics_sampler_collects_periodic_snapshots(fresh_cluster):
    series = fresh_cluster.start_metrics_sampler(period_s=5.0, retention_s=3600.0)
    assert fresh_cluster.metrics_series is series
    fresh_cluster.query("SELECT COUNT(*) FROM T")
    fresh_cluster.sim.run(until=fresh_cluster.sim.now + 30.0)
    assert series.samples_taken >= 5
    latest = series.latest()
    assert latest is not None
    assert latest.jobs_total >= 1 and latest.jobs_succeeded >= 1
    assert series.timestamps() == sorted(series.timestamps())
    assert len(series.series("jobs_total")) == len(series.samples)
    exported = series.export()
    json.dumps(exported)  # JSON-ready
    assert exported[-1]["jobs_total"] == latest.jobs_total


def test_metrics_sampler_respects_retention(fresh_cluster):
    series = fresh_cluster.start_metrics_sampler(period_s=1.0, retention_s=5.0)
    fresh_cluster.sim.run(until=60.0)
    assert series.samples_evicted > 0
    assert len(series.samples) <= 7  # window + in-flight slack
    assert series.timestamps()[0] >= fresh_cluster.sim.now - 5.0 - 1.0


def test_metrics_sampler_start_is_idempotent(fresh_cluster):
    a = fresh_cluster.start_metrics_sampler(period_s=2.0)
    proc = a._proc  # noqa: SLF001
    assert a.start() is a
    assert a._proc is proc  # noqa: SLF001
