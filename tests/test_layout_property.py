"""Property: a layout rewrite is a lossless re-arrangement (S54).

Hypothesis drives random blocks — integers, NaN-bearing floats,
dictionary-encodable strings — through random :class:`LayoutSpec`
rewrites and the byte round-trip.  The contract: the variant holds
exactly the base rows as a multiset (NaNs included, compared as NaNs,
not dropped or zeroed), every kept column decodes to its original dtype
kind, the projection keeps exactly the spec'd columns, and an order
column really leaves the variant physically sorted.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import DataType, Schema
from repro.columnar.block import Block
from repro.storage.layouts import LayoutSpec, apply_layout

settings.register_profile("layouts", deadline=None, max_examples=60)
settings.load_profile("layouts")

SCHEMA = Schema.of(a=DataType.INT64, b=DataType.FLOAT64, c=DataType.STRING)
COLUMNS = ("a", "b", "c")

floats = st.one_of(
    st.floats(min_value=-4, max_value=8, allow_nan=False), st.just(float("nan"))
)


@st.composite
def blocks(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    arrays = {
        "a": np.array(draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n)),
                      dtype=np.int64),
        "b": np.array(draw(st.lists(floats, min_size=n, max_size=n)),
                      dtype=np.float64),
        "c": np.array(draw(st.lists(st.sampled_from(["a", "b", "cc", "ddd"]),
                                    min_size=n, max_size=n)), dtype=object),
    }
    return Block.from_arrays("prop", SCHEMA, arrays)


@st.composite
def specs(draw):
    sort = draw(st.sampled_from((None, "a", "b", "c")))
    copart = draw(st.sampled_from((None, "a", "c")))
    if draw(st.booleans()):
        cols = tuple(sorted(draw(
            st.sets(st.sampled_from(COLUMNS), min_size=1, max_size=3)
        )))
    else:
        cols = None
    index = draw(st.sampled_from((None, "a")))
    return LayoutSpec(
        sort_column=sort, columns=cols, index_column=index,
        copartition_column=copart,
    )


def _canon(value):
    """NaN-safe row element for multiset comparison."""
    if isinstance(value, float) and math.isnan(value):
        return "<NaN>"
    return value


def _multiset(block, names):
    rows = (
        tuple(_canon(v) for v in row)
        for row in zip(*(block.column(n).tolist() for n in names))
    )
    # repr-keyed sort: mixed str/float tuples (the NaN sentinel) have no
    # natural order but repr gives a total, deterministic one.
    return sorted(rows, key=repr)


def _is_sorted(values):
    # Match np.argsort semantics: NaNs sort last and count as in-order.
    clean = [v for v in values if not (isinstance(v, float) and math.isnan(v))]
    if len(clean) < len(values):  # every NaN must trail the clean prefix
        tail = values[len(clean):]
        if not all(isinstance(v, float) and math.isnan(v) for v in tail):
            return False
    return all(x <= y for x, y in zip(clean, clean[1:]))


@given(blocks(), specs())
def test_layout_rewrite_round_trip_is_lossless(block, spec):
    variant = Block.from_bytes(apply_layout(block, spec).to_bytes())
    effective = spec.narrowed_to(COLUMNS)
    kept = (
        COLUMNS if effective.columns is None
        else tuple(n for n in COLUMNS if n in effective.columns)
    )
    # Projection keeps exactly the spec'd columns (order/index columns
    # force-included), nothing else.
    assert tuple(f.name for f in variant.schema.fields) == kept
    assert variant.num_rows == block.num_rows
    # Row multiset over the kept columns is intact — NaNs compare as
    # NaNs, dictionary strings round-trip exactly.
    assert _multiset(variant, kept) == _multiset(block, kept)
    # Dtypes survive the re-encode.
    for name in kept:
        assert variant.column(name).dtype.kind == block.column(name).dtype.kind
    # The order column leaves the variant physically sorted.
    order = effective.order_column
    if order is not None and order in kept:
        assert _is_sorted(variant.column(order).tolist())
    # Idempotence: rewriting the variant with the same spec is a no-op
    # permutation-wise (stable sort of an already-sorted block).
    again = apply_layout(variant, effective)
    for name in kept:
        a, b = again.column(name).tolist(), variant.column(name).tolist()
        assert [_canon(v) for v in a] == [_canon(v) for v in b]
