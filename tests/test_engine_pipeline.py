"""Fused scan pipelines (engine.pipeline): parity with the unfused
executor at TaskResult granularity, morsel boundary handling, the
merge-exact gate, index feeding, and the pool plumbing."""

import numpy as np
import pytest

from repro.columnar.schema import DataType, Schema
from repro.columnar.table import Catalog
from repro.engine.executor import execute_scan_task, finalize
from repro.engine.pipeline import (
    DEFAULT_MORSEL_ROWS,
    FusedPipeline,
    execute_fused_scan_task,
    merge_exact_aggregation,
    resolve_worker_threads,
    worker_pool,
)
from repro.index.smartindex import SmartIndexManager
from repro.planner.expressions import Frame
from repro.planner.physical import build_plan
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.storage.loader import load_block, read_table_frame, store_table
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS
from repro.sim.netmodel import TopologySpec

N = 5000


@pytest.fixture(scope="module")
def env():
    nodes = TopologySpec(1, 1, 4).addresses()
    hdfs = DistributedFS(nodes)
    router = StorageRouter()
    router.register(hdfs, default=True)
    catalog = Catalog()
    rng = np.random.default_rng(9)
    columns = {
        "c1": rng.integers(0, 100, N),
        "c2": rng.integers(0, 10, N),
        "url": np.array([f"http://s{i % 6}.com/p{i % 11}" for i in range(N)], dtype=object),
        "clicks": rng.random(N),
    }
    schema = Schema.of(
        c1=DataType.INT64, c2=DataType.INT64, url=DataType.STRING, clicks=DataType.FLOAT64
    )
    store_table("T", schema, columns, router, hdfs, block_rows=1024, catalog=catalog)
    dim = {
        "c2": np.arange(10, dtype=np.int64),
        "label": np.array([f"g{i}" for i in range(10)], dtype=object),
    }
    store_table(
        "D", Schema.of(c2=DataType.INT64, label=DataType.STRING), dim, router, hdfs, catalog=catalog
    )
    return router, catalog, columns


def _plan_and_broadcasts(env, sql):
    router, catalog, _ = env
    plan = build_plan(analyze(parse(sql), catalog))
    broadcasts = {}
    for bc in plan.broadcasts:
        table = catalog.get(bc.table_name)
        broadcasts[bc.binding] = Frame.from_columns(
            read_table_frame(router, table, list(bc.columns))
        )
    return plan, broadcasts


def _run_both(env, sql, morsel_rows=DEFAULT_MORSEL_ROWS, managers=(None, None)):
    """Execute every task unfused and fused; returns paired result lists."""
    router, _catalog, _ = env
    plan, broadcasts = _plan_and_broadcasts(env, sql)
    unfused, fused = [], []
    for task in plan.tasks:
        block = load_block(router, task.block)
        unfused.append(
            execute_scan_task(task, plan, block, broadcasts, index_manager=managers[0])
        )
        fused.append(
            execute_fused_scan_task(
                task, plan, block, broadcasts,
                index_manager=managers[1], morsel_rows=morsel_rows,
            )
        )
    return plan, unfused, fused


def _assert_task_parity(plan, unfused, fused):
    for u, f in zip(unfused, fused):
        assert f.report.fused and not u.report.fused
        for field in ("io_bytes", "io_seeks", "cpu_ops", "rows_matched",
                      "rows_in_block", "index_full_cover"):
            assert getattr(u.report, field) == getattr(f.report, field), field
        if u.frame is not None:
            assert f.frame is not None
            assert list(u.frame.columns) == list(f.frame.columns)
            for name, col in u.frame.columns.items():
                other = f.frame.columns[name]
                assert col.dtype == other.dtype, name
                assert np.array_equal(col, other), name
    ru = finalize(plan, unfused)
    rf = finalize(plan, fused)
    assert ru.rows() == rf.rows()
    assert ru.columns == rf.columns


PARITY_QUERIES = [
    "SELECT c1, clicks FROM T WHERE c1 > 50 AND c2 = 3",
    "SELECT COUNT(*) FROM T",
    "SELECT c1 FROM T",
    "SELECT COUNT(*), SUM(c1), MIN(c1), MAX(c1) FROM T WHERE c2 >= 7",
    "SELECT c2, SUM(clicks), AVG(clicks) FROM T WHERE c1 < 40 GROUP BY c2",
    "SELECT c1, url FROM T WHERE url CONTAINS 'p7' OR c1 = 3",
    "SELECT c1 FROM T WHERE c1 > 90 ORDER BY c1 LIMIT 7",
    "SELECT T.c1, D.label FROM T JOIN D ON T.c2 = D.c2 WHERE T.c1 > 80",
    "SELECT D.label, COUNT(*) FROM T LEFT JOIN D ON T.c2 = D.c2 GROUP BY D.label",
]


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_fused_matches_unfused_per_task(env, sql):
    plan, unfused, fused = _run_both(env, sql)
    _assert_task_parity(plan, unfused, fused)


@pytest.mark.parametrize("morsel_rows", [1, 7, 1000, 1024, 5000])
def test_morsel_boundaries(env, morsel_rows):
    sql = "SELECT c2, SUM(c1), COUNT(*) FROM T WHERE c1 > 30 GROUP BY c2"
    plan, unfused, fused = _run_both(env, sql, morsel_rows=morsel_rows)
    _assert_task_parity(plan, unfused, fused)
    expected = -(-1024 // morsel_rows)  # blocks are 1024 rows
    assert all(f.report.morsels == min(expected, -(-f.report.rows_in_block // morsel_rows))
               for f in fused)


def test_index_feeding_matches_unfused(env):
    sql = "SELECT c1 FROM T WHERE c1 > 60 AND c2 = 4"
    mgr_u, mgr_f = SmartIndexManager(), SmartIndexManager()
    plan, unfused, fused = _run_both(env, sql, morsel_rows=200, managers=(mgr_u, mgr_f))
    _assert_task_parity(plan, unfused, fused)
    assert mgr_u.entry_count == mgr_f.entry_count > 0
    assert mgr_u.used_bytes == mgr_f.used_bytes
    for task in plan.tasks:
        keys_u = sorted(e.predicate_key for e in mgr_u.entries_for_block(task.block.block_id))
        keys_f = sorted(e.predicate_key for e in mgr_f.entries_for_block(task.block.block_id))
        assert keys_u == keys_f


def test_index_covered_second_pass(env):
    """Second fused pass answers from the index — including the
    empty-cover shortcut when a block has no matching rows."""
    sql = "SELECT c1 FROM T WHERE c1 > 97 AND c2 = 4"
    router, _catalog, _ = env
    plan, broadcasts = _plan_and_broadcasts(env, sql)
    mgr = SmartIndexManager()
    blocks = [load_block(router, t.block) for t in plan.tasks]
    first = [
        execute_fused_scan_task(t, plan, b, broadcasts, index_manager=mgr, morsel_rows=100)
        for t, b in zip(plan.tasks, blocks)
    ]
    second = [
        execute_fused_scan_task(t, plan, b, broadcasts, index_manager=mgr, morsel_rows=100)
        for t, b in zip(plan.tasks, blocks)
    ]
    assert all(r.report.index_full_cover for r in second)
    assert finalize(plan, first).rows() == finalize(plan, second).rows()
    # Covered tasks read payload columns only (or nothing when no rows match).
    assert all(s.report.io_bytes <= f.report.io_bytes for s, f in zip(second, first))


def test_merge_exact_gate(env):
    _router, catalog, _ = env

    def gate(sql):
        return merge_exact_aggregation(build_plan(analyze(parse(sql), catalog)))

    assert gate("SELECT COUNT(*) FROM T")
    assert gate("SELECT c2, COUNT(*), SUM(c1), MIN(c1), MAX(c1) FROM T GROUP BY c2")
    assert not gate("SELECT SUM(clicks) FROM T")  # float: reassociates
    assert not gate("SELECT AVG(c1) FROM T")  # AVG: reassociates
    assert not gate("SELECT c1 FROM T")  # not an aggregate
    assert not gate(
        "SELECT COUNT(*) FROM T JOIN D ON T.c2 = D.c2"
    )  # joins run on the driver


def test_lazy_decode_equivalence(env):
    """The encoding-aware accessors agree with a full decode."""
    router, _catalog, _ = env
    sql = "SELECT c1 FROM T"
    plan, _ = _plan_and_broadcasts(env, sql)
    block = load_block(router, plan.tasks[0].block)
    for name, chunk in block.chunks.items():
        decoded = chunk.decode()
        parts = chunk.dictionary_parts()
        if parts is not None:
            uniques, codes = parts
            assert np.array_equal(uniques[codes], decoded)
        view = chunk.plain_view()
        if view is not None:
            assert np.array_equal(view, decoded)
            assert not view.flags.writeable


def test_compile_exposes_morsels(env):
    router, _catalog, _ = env
    plan, _ = _plan_and_broadcasts(env, "SELECT c1 FROM T WHERE c1 > 50")
    task = plan.tasks[0]
    pipe = FusedPipeline.compile(
        task, plan, load_block(router, task.block), morsel_rows=300
    )
    assert [hi - lo for lo, hi in pipe.morsels[:-1]] == [300] * (len(pipe.morsels) - 1)
    assert pipe.morsels[-1][1] == task.block.num_rows


def test_worker_pool_reuse_and_sizing():
    assert resolve_worker_threads(3) == 3
    assert resolve_worker_threads(0) >= 1
    pool = worker_pool(2)
    assert worker_pool(2) is pool
    assert pool.submit(lambda: 41 + 1).result() == 42


def test_fused_runs_on_pool(env):
    """Force multi-threaded morsel execution and check parity still holds."""
    sql = "SELECT c2, SUM(c1), COUNT(*) FROM T WHERE c1 > 20 GROUP BY c2"
    router, _catalog, _ = env
    plan, broadcasts = _plan_and_broadcasts(env, sql)
    unfused, fused = [], []
    for task in plan.tasks:
        block = load_block(router, task.block)
        unfused.append(execute_scan_task(task, plan, block, broadcasts))
        fused.append(
            execute_fused_scan_task(
                task, plan, block, broadcasts, worker_threads=4, morsel_rows=128
            )
        )
    _assert_task_parity(plan, unfused, fused)
    assert all(r.report.workers == 4 for r in fused)
    assert all(r.report.morsel_wall_s >= 0.0 for r in fused)
