"""Vectorized expression evaluation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.planner.expressions import (
    Frame,
    evaluate,
    expression_cost_ops,
    make_qualified_resolver,
    string_contains,
)
from repro.sql.parser import parse_expression


@pytest.fixture()
def frame():
    s = np.empty(5, dtype=object)
    s[:] = ["apple", "banana", "cherry", "apple pie", "grape"]
    return Frame.from_columns(
        {
            "a": np.array([1, 2, 3, 4, 5], dtype=np.int64),
            "b": np.array([1.0, 0.5, -2.0, 4.0, 0.0]),
            "s": s,
            "flag": np.array([True, False, True, False, True]),
        }
    )


def _eval(text, frame):
    return evaluate(parse_expression(text), frame)


def test_literal_broadcast(frame):
    assert (_eval("7", frame) == 7).all()
    assert _eval("7", frame).dtype == np.int64
    out = _eval("'x'", frame)
    assert out.dtype == object and out[0] == "x"


def test_column_lookup(frame):
    assert (_eval("a", frame) == np.arange(1, 6)).all()


def test_arithmetic(frame):
    assert (_eval("a + 1", frame) == np.arange(2, 7)).all()
    assert (_eval("a * a", frame) == np.arange(1, 6) ** 2).all()
    assert (_eval("a - 2 * a", frame) == -np.arange(1, 6)).all()
    assert _eval("a / 2", frame)[1] == pytest.approx(1.0)
    assert (_eval("a % 2", frame) == np.array([1, 0, 1, 0, 1])).all()
    assert (_eval("-a", frame) == -np.arange(1, 6)).all()


def test_comparisons(frame):
    assert (_eval("a > 3", frame) == np.array([0, 0, 0, 1, 1], bool)).all()
    assert (_eval("a <= 2", frame) == np.array([1, 1, 0, 0, 0], bool)).all()
    assert (_eval("b = 0", frame) == np.array([0, 0, 0, 0, 1], bool)).all()
    assert (_eval("a != 3", frame) == np.array([1, 1, 0, 1, 1], bool)).all()


def test_boolean_connectives(frame):
    out = _eval("a > 1 AND a < 5", frame)
    assert (out == np.array([0, 1, 1, 1, 0], bool)).all()
    out = _eval("a = 1 OR a = 5", frame)
    assert (out == np.array([1, 0, 0, 0, 1], bool)).all()
    out = _eval("NOT (a > 3)", frame)
    assert (out == np.array([1, 1, 1, 0, 0], bool)).all()


def test_and_short_circuits_on_all_false(frame):
    # right side would divide by zero rows; short-circuit avoids evaluating it
    out = _eval("a > 99 AND b / b > 0", frame)
    assert not out.any()


def test_contains(frame):
    out = _eval("s CONTAINS 'apple'", frame)
    assert (out == np.array([1, 0, 0, 1, 0], bool)).all()
    out = _eval("s CONTAINS 'an'", frame)
    assert (out == np.array([0, 1, 0, 0, 0], bool)).all()


def test_string_contains_empty_column():
    assert len(string_contains(np.empty(0, dtype=object), "x")) == 0


def test_scalar_functions(frame):
    assert (_eval("LENGTH(s)", frame) == np.array([5, 6, 6, 9, 5])).all()
    assert _eval("UPPER(s)", frame)[0] == "APPLE"
    assert _eval("LOWER(UPPER(s))", frame)[0] == "apple"
    assert (_eval("ABS(b)", frame) == np.abs(frame.column("b"))).all()


def test_missing_column_raises(frame):
    with pytest.raises(ExecutionError, match="no column"):
        _eval("zzz", frame)


def test_frame_take_and_head(frame):
    mask = np.array([1, 0, 1, 0, 1], bool)
    sub = frame.take(mask)
    assert sub.num_rows == 3
    assert list(sub.column("a")) == [1, 3, 5]
    assert frame.head(2).num_rows == 2


def test_frame_concat():
    f1 = Frame.from_columns({"x": np.array([1, 2])})
    f2 = Frame.from_columns({"x": np.array([3])})
    merged = Frame.concat([f1, f2])
    assert list(merged.column("x")) == [1, 2, 3]


def test_frame_concat_mismatch_rejected():
    f1 = Frame.from_columns({"x": np.array([1])})
    f2 = Frame.from_columns({"y": np.array([1])})
    with pytest.raises(ExecutionError):
        Frame.concat([f1, f2])


def test_frame_ragged_rejected():
    with pytest.raises(ExecutionError, match="ragged"):
        Frame.from_columns({"x": np.array([1]), "y": np.array([1, 2])})


def test_qualified_resolver():
    frame = Frame.from_columns({"t.a": np.array([1]), "b": np.array([2])})
    resolve = make_qualified_resolver(frame)
    from repro.sql.ast import Column

    assert resolve(Column("a", table="t")) == "t.a"
    assert resolve(Column("b")) == "b"
    assert resolve(Column("a")) == "t.a"  # suffix fallback
    with pytest.raises(ExecutionError):
        resolve(Column("zz"))


def test_cost_ops_contains_weighted():
    cheap = expression_cost_ops(parse_expression("a > 1"), 100)
    pricey = expression_cost_ops(parse_expression("s CONTAINS 'x'"), 100)
    assert pricey > cheap
