"""Nested-record flattening (§III-A json support)."""

import numpy as np
import pytest

from repro.columnar.json_flatten import flatten_record, flatten_records
from repro.columnar.schema import DataType
from repro.errors import AnalysisError


def test_flatten_nested_objects():
    flat = flatten_record({"a": {"b": {"c": 1}}, "d": "x"})
    assert flat == {"a.b.c": 1, "d": "x"}


def test_flatten_lists_join_to_string():
    flat = flatten_record({"tags": ["a", "b", 3]})
    assert flat == {"tags": "a,b,3"}


def test_flatten_rejects_exotic_values():
    with pytest.raises(AnalysisError):
        flatten_record({"x": object()})


def test_flatten_records_schema_inference():
    schema, cols = flatten_records(
        [
            {"id": 1, "meta": {"ok": True}, "score": 1.5},
            {"id": 2, "meta": {"ok": False}, "score": 2},
        ]
    )
    assert schema.field("id").dtype is DataType.INT64
    assert schema.field("meta.ok").dtype is DataType.BOOL
    # int + float mixes widen to float
    assert schema.field("score").dtype is DataType.FLOAT64
    assert cols["score"].dtype == np.float64
    assert list(cols["id"]) == [1, 2]


def test_flatten_records_missing_keys_defaulted():
    schema, cols = flatten_records([{"a": 1, "b": "x"}, {"a": 2}])
    assert list(cols["b"]) == ["x", ""]


def test_flatten_records_none_uses_type_default():
    _schema, cols = flatten_records([{"a": 5}, {"a": None}])
    assert list(cols["a"]) == [5, 0]


def test_flatten_records_mixed_types_degrade_to_string():
    schema, cols = flatten_records([{"v": 1}, {"v": "x"}])
    assert schema.field("v").dtype is DataType.STRING
    assert list(cols["v"]) == ["1", "x"]


def test_flatten_records_column_order_is_first_seen():
    schema, _ = flatten_records([{"b": 1}, {"a": 2, "b": 3}])
    assert schema.names == ["b", "a"]


def test_all_none_column_becomes_string():
    schema, cols = flatten_records([{"x": None}])
    assert schema.field("x").dtype is DataType.STRING
    assert list(cols["x"]) == [""]
