"""The §III per-node raw→columnar conversion daemon."""

import pytest

from repro.workload.conversion import (
    ConversionDaemon,
    start_conversion_daemons,
    write_raw_records,
)
from repro.workload.loggen import generate_log_records


def test_daemon_converts_raw_files(fresh_cluster):
    node = fresh_cluster.nodes[0]
    records = generate_log_records(50, node_idx=0, hour=0)
    write_raw_records(fresh_cluster, node, "h0.jsonl", records)
    daemon = ConversionDaemon(fresh_cluster, node, table_name="dlogs")
    converted = fresh_cluster.sim.run_until_complete(
        fresh_cluster.sim.process(daemon.convert_pending())
    )
    assert converted == 1
    assert daemon.stats.records_converted == 50
    table = fresh_cluster.catalog.get("dlogs")
    assert table.num_rows == 50
    # raw file consumed
    assert fresh_cluster.local_fs.list_paths(f"/raw/{node}/") == []
    # converted data is queryable
    r = fresh_cluster.query("SELECT COUNT(*) FROM dlogs")
    assert r.rows()[0][0] == 50


def test_daemon_charges_node_cpu(fresh_cluster):
    node = fresh_cluster.nodes[1]
    leaf = fresh_cluster.leaf_at(node)
    before = leaf.cpu.ops_executed
    write_raw_records(
        fresh_cluster, node, "x.jsonl", generate_log_records(30, node_idx=1, hour=0)
    )
    daemon = ConversionDaemon(fresh_cluster, node, table_name="dlogs2")
    fresh_cluster.sim.run_until_complete(
        fresh_cluster.sim.process(daemon.convert_pending())
    )
    assert leaf.cpu.ops_executed > before


def test_background_daemons_pick_up_new_arrivals(fresh_cluster):
    daemons = start_conversion_daemons(fresh_cluster, table_name="dlogs3", period_s=10.0)
    assert len(daemons) == len(fresh_cluster.nodes)
    for i, node in enumerate(fresh_cluster.nodes[:3]):
        write_raw_records(
            fresh_cluster, node, "a.jsonl", generate_log_records(20, node_idx=i, hour=0)
        )
    fresh_cluster.sim.run(until=fresh_cluster.sim.now + 25.0)
    table = fresh_cluster.catalog.get("dlogs3")
    assert table.num_rows == 60
    # a second wave arrives later and is converted on the next sweep
    write_raw_records(
        fresh_cluster, fresh_cluster.nodes[0], "b.jsonl",
        generate_log_records(20, node_idx=0, hour=1),
    )
    fresh_cluster.sim.run(until=fresh_cluster.sim.now + 15.0)
    assert table.num_rows == 80


def test_schema_alignment_across_nodes(fresh_cluster):
    node_a, node_b = fresh_cluster.nodes[0], fresh_cluster.nodes[1]
    write_raw_records(fresh_cluster, node_a, "a.jsonl", [{"x": 1, "y": "hello"}])
    write_raw_records(fresh_cluster, node_b, "b.jsonl", [{"x": 2}])  # y missing
    for node in (node_a, node_b):
        daemon = ConversionDaemon(fresh_cluster, node, table_name="dlogs4")
        fresh_cluster.sim.run_until_complete(
            fresh_cluster.sim.process(daemon.convert_pending())
        )
    r = fresh_cluster.query("SELECT x, y FROM dlogs4 ORDER BY x")
    assert r.rows() == [(1, "hello"), (2, "")]


def test_empty_raw_file_discarded(fresh_cluster):
    node = fresh_cluster.nodes[2]
    fresh_cluster.local_fs.write(f"/raw/{node}/empty.jsonl", b"", node=node)
    daemon = ConversionDaemon(fresh_cluster, node, table_name="dlogs5")
    converted = fresh_cluster.sim.run_until_complete(
        fresh_cluster.sim.process(daemon.convert_pending())
    )
    assert converted == 0
    assert fresh_cluster.local_fs.list_paths(f"/raw/{node}/") == []
