"""Regression tests for the cluster-state bugfix sweep.

Covers four long-standing defects:

* shared mutable ``CostModel()`` / ``LeafConfig()`` defaults leaking
  ablation tweaks between independent clusters;
* silent zombie resurrection in :meth:`ClusterManager.heartbeat`
  (re-admission is now explicit: counter + scheduler notification);
* the unbounded :class:`PrimaryBackup` op log (now truncated at
  ``sync_shadow`` checkpoints, with shadow bootstrap from
  checkpoint-plus-tail);
* the straggler watchdog launching a backup against a stale deadline
  right after a failed attempt's retry started (double-backup).
"""

from __future__ import annotations

import pytest

from repro import FeisuCluster, FeisuConfig
from repro.cluster.failover import PrimaryBackup
from repro.cluster.ledger import JobLedger
from repro.cluster.master import _straggler_watchdog
from repro.cluster.membership import ClusterManager
from repro.cluster.messages import WorkerLoad
from repro.cluster.node import LeafServer
from repro.cluster.scheduler import JobScheduler
from repro.cluster.sharding import ShardedClusterManager
from repro.index.advisor import IndexAdvisor
from repro.sim.events import Simulator
from repro.sim.netmodel import NodeAddress


# -- satellite 1: shared mutable defaults -----------------------------------


class TestPerInstanceDefaults:
    def test_schedulers_do_not_share_a_cost_model(self):
        a = FeisuCluster(FeisuConfig(nodes_per_rack=2))
        b = FeisuCluster(FeisuConfig(nodes_per_rack=2))
        assert a.scheduler.cost_model is not b.scheduler.cost_model
        # Swapping one cluster's model (ablations do) must not touch the
        # other's.
        from repro.planner.cost import CostModel

        a.scheduler.cost_model = CostModel(disk_bandwidth_bps=1.0)
        assert b.scheduler.cost_model.disk_bandwidth_bps != 1.0

    def test_leaves_do_not_share_config_or_cost_model(self):
        cluster = FeisuCluster(FeisuConfig(nodes_per_rack=2))
        leaves = cluster.leaves
        assert len(leaves) >= 2
        assert leaves[0].config is not leaves[1].config
        assert leaves[0].cost_model is not leaves[1].cost_model
        leaves[0].config.index_ttl_s = 1.0
        assert leaves[1].config.index_ttl_s == type(leaves[1].config)().index_ttl_s

    def test_fresh_construction_uses_fresh_defaults(self):
        # The historical bug: `def __init__(..., cost_model=CostModel())`
        # evaluated once at def time.  Two bare constructions must not
        # alias even without a cluster facade in the middle.
        assert (
            JobScheduler.__init__.__defaults__ is None
            or all(
                d is None or d.__class__.__name__ != "CostModel"
                for d in JobScheduler.__init__.__defaults__
            )
        ), "JobScheduler must not bake a CostModel instance into its defaults"
        assert (
            LeafServer.__init__.__defaults__ is None
            or all(
                d is None or d.__class__.__name__ not in ("CostModel", "LeafConfig")
                for d in LeafServer.__init__.__defaults__
            )
        ), "LeafServer must not bake CostModel/LeafConfig instances into its defaults"
        assert (
            IndexAdvisor.__init__.__defaults__ is None
            or all(
                d is None or d.__class__.__name__ != "CostModel"
                for d in IndexAdvisor.__init__.__defaults__
            )
        ), "IndexAdvisor must not bake a CostModel instance into its defaults"


# -- satellite 2: explicit zombie re-admission ------------------------------


class TestHeartbeatReadmission:
    def _dead_worker(self):
        sim = Simulator()
        cm = ClusterManager(sim)
        cm.register("leaf-1", NodeAddress(0, 0, 0))
        sim.run(until=100.0)  # well past HEARTBEAT_PERIOD_S * MISSED_LIMIT
        dead = cm.sweep()
        assert dead == ["leaf-1"]
        assert not cm.is_alive("leaf-1")
        return sim, cm

    def test_late_heartbeat_still_revives(self):
        sim, cm = self._dead_worker()
        cm.heartbeat("leaf-1", WorkerLoad())
        assert cm.is_alive("leaf-1")

    def test_readmission_is_counted_and_announced(self):
        sim, cm = self._dead_worker()
        seen = []
        cm.on_readmit(seen.append)
        cm.heartbeat("leaf-1", WorkerLoad())
        assert cm.readmissions == 1
        assert cm._workers["leaf-1"].readmitted == 1  # noqa: SLF001
        assert seen == ["leaf-1"]
        # A live worker's heartbeat is not a re-admission.
        cm.heartbeat("leaf-1", WorkerLoad())
        assert cm.readmissions == 1
        assert seen == ["leaf-1"]

    def test_scheduler_learns_about_readmitted_workers(self):
        cluster = FeisuCluster(FeisuConfig(nodes_per_rack=2))
        wid = cluster.leaves[0].worker_id
        record = cluster.cluster_manager._workers[wid]  # noqa: SLF001
        record.alive = False  # as sweep() would after missed heartbeats
        cluster.cluster_manager.heartbeat(wid, WorkerLoad())
        assert cluster.scheduler.readmitted_workers == [wid]
        assert cluster.cluster_manager.is_alive(wid)

    def test_sharded_manager_forwards_readmissions(self):
        sim = Simulator()
        scm = ShardedClusterManager(sim, shards=2)
        for i in range(4):
            scm.register(f"w{i}", NodeAddress(0, 0, i))
        seen = []
        scm.on_readmit(seen.append)
        scm.add_shard()  # late shards must inherit listeners too
        scm.register("late", NodeAddress(0, 1, 9))
        sim.run(until=100.0)
        dead = set(scm.sweep())
        assert "late" in dead and "w0" in dead
        scm.heartbeat("w0", WorkerLoad())
        scm.heartbeat("late", WorkerLoad())
        assert scm.readmissions == 2
        assert sorted(seen) == ["late", "w0"]


# -- satellite 3: bounded PrimaryBackup op log ------------------------------


def _set_op(state: dict, key: int, value: int) -> None:
    state[key] = value


class TestBoundedOpLog:
    def test_log_truncates_at_checkpoints(self):
        pb = PrimaryBackup(Simulator(), dict, checkpoint_interval_ops=10)
        for i in range(95):
            pb.apply(_set_op, i, i)
        assert pb.log_length < 10, "log must hold only the post-checkpoint tail"
        assert pb.log_length == 95 % 10
        assert pb.state == {i: i for i in range(95)}

    def test_without_interval_explicit_sync_truncates(self):
        pb = PrimaryBackup(Simulator(), dict)
        for i in range(50):
            pb.apply(_set_op, i, i)
        assert pb.log_length == 50
        pb.sync_shadow()
        assert pb.log_length == 0
        assert pb.monitoring_state() == pb.state

    def test_failover_after_truncation_loses_nothing(self):
        pb = PrimaryBackup(Simulator(), dict, checkpoint_interval_ops=10)
        for i in range(25):
            pb.apply(_set_op, i, i)
        pb.fail_primary()
        assert pb.state == {i: i for i in range(25)}

    def test_new_shadow_bootstraps_from_checkpoint_plus_tail(self):
        pb = PrimaryBackup(Simulator(), dict, checkpoint_interval_ops=10)
        for i in range(25):
            pb.apply(_set_op, i, i)
        pb.fail_primary()
        pb.start_new_shadow()
        # The fresh shadow starts from the op-20 checkpoint plus the
        # 5-op tail, not a full-history replay.
        assert pb.monitoring_state() == {i: i for i in range(25)}
        for i in range(25, 40):
            pb.apply(_set_op, i, i)
        pb.fail_primary()
        assert pb.state == {i: i for i in range(40)}

    def test_job_ledger_log_stays_bounded(self):
        ledger = JobLedger(Simulator(), checkpoint_interval_ops=8)
        for i in range(100):
            ledger.record_submitted(f"job-{i}", "u", "SELECT 1", float(i))
            ledger.record_finished(f"job-{i}", "succeeded", float(i) + 0.5)
        assert ledger.log_length < 8
        assert len(ledger.entries()) == 100
        ledger.fail_primary()
        assert len(ledger.entries()) == 100


# -- satellite 4: straggler watchdog rebase ---------------------------------


class _WatchdogHarness:
    """Drives ``_straggler_watchdog`` with the supervisor's bookkeeping."""

    def __init__(self, first_estimate: float = 1.0):
        self.sim = Simulator()
        self.done = self.sim.event(name="task-done")
        self.attempts = [self.sim.event(name="attempt0")]
        self.estimates = [first_estimate]
        self.launch_times = [0.0]
        self.backups = 0

    def deadline_for(self, estimate_s: float) -> float:
        return max(2.0, 3.0 * estimate_s)

    def launch_backup(self) -> None:
        self.backups += 1
        self.attempts.append(self.sim.event(name=f"attempt{len(self.attempts)}"))
        self.estimates.append(self.estimates[0])
        self.launch_times.append(self.sim.now)

    def retry_on_failure(self, attempt_index: int, estimate: float) -> None:
        """Mimic the supervisor's completion callback: when an attempt
        fails, the retry is launched from a callback at the same
        simulated instant (behind the watchdog in the callback queue)."""

        def do_retry():
            if not self.done.triggered:
                self.attempts.append(self.sim.event(name=f"attempt{len(self.attempts)}"))
                self.estimates.append(estimate)
                self.launch_times.append(self.sim.now)

        # Two queue hops (event callback, then the launch itself), so at
        # a shared timestamp the retry can land *behind* the watchdog's
        # wake-up — the ordering the zero-delay re-check exists for.
        self.attempts[attempt_index].add_callback(
            lambda _ev: self.sim.schedule(0.0, do_retry)
        )

    def start(self):
        return self.sim.process(
            _straggler_watchdog(
                self.sim,
                self.deadline_for,
                self.done,
                self.attempts,
                self.estimates,
                self.launch_times,
                self.launch_backup,
            ),
            name="watchdog",
        )


class TestStragglerWatchdogRebase:
    def test_genuine_straggler_gets_exactly_one_backup(self):
        h = _WatchdogHarness(first_estimate=1.0)
        proc = h.start()
        # First attempt completes only at t=10, well past its t=3 deadline.
        h.sim.schedule(10.0, lambda: (h.attempts[0].succeed(), h.done.succeed()))
        h.sim.run_until_complete(proc)
        assert h.backups == 1
        assert h.launch_times[1] == pytest.approx(3.0)

    def test_fresh_retry_is_not_immediately_backed_up(self):
        # The bug: attempt 0 (launched t=0, deadline t=3) fails at t=2.9
        # and its retry starts immediately.  The old watchdog still fired
        # at t=3 against attempt 0's deadline, double-covering a 0.1s-old
        # retry.  The fixed watchdog rebases onto the retry's own clock.
        h = _WatchdogHarness(first_estimate=1.0)
        h.retry_on_failure(0, estimate=1.0)
        proc = h.start()
        h.sim.schedule(2.9, h.attempts[0].succeed)
        # The retry (launched ~t=2.9) completes healthily at t=4.0.
        h.sim.schedule(4.0, lambda: (h.attempts[1].succeed(), h.done.succeed()))
        h.sim.run_until_complete(proc)
        assert h.backups == 0, "retry was fresh; no backup deadline had passed"

    def test_slow_retry_still_gets_a_backup_on_its_own_deadline(self):
        h = _WatchdogHarness(first_estimate=1.0)
        h.retry_on_failure(0, estimate=1.0)
        proc = h.start()
        h.sim.schedule(2.9, h.attempts[0].succeed)
        # Retry launched at t=2.9 with deadline t=5.9; it straggles.
        h.sim.schedule(20.0, lambda: (h.attempts[1].succeed(), h.done.succeed()))
        h.sim.run_until_complete(proc)
        assert h.backups == 1
        assert h.launch_times[2] == pytest.approx(2.9 + 3.0)

    def test_failure_at_deadline_instant_rebases_not_doubles(self):
        # Failure lands exactly on the watchdog's wake-up timestamp; the
        # retry callback sits behind the watchdog in the queue.  One
        # zero-delay yield lets it appear, then the watchdog rebases.
        h = _WatchdogHarness(first_estimate=1.0)
        h.retry_on_failure(0, estimate=1.0)
        proc = h.start()
        h.sim.schedule(3.0, h.attempts[0].succeed)
        h.sim.schedule(4.0, lambda: (h.attempts[1].succeed(), h.done.succeed()))
        h.sim.run_until_complete(proc)
        assert h.backups == 0

    def test_failed_attempt_with_no_retry_stops_cleanly(self):
        # Task gave up (max attempts): the watchdog must neither launch a
        # backup nor spin on zero-delay timeouts forever.
        h = _WatchdogHarness(first_estimate=1.0)
        proc = h.start()

        def fail_then_resolve():
            h.attempts[0].succeed()
            h.sim.schedule(0.0, h.done.succeed)

        h.sim.schedule(3.0, fail_then_resolve)
        h.sim.run_until_complete(proc)
        assert h.backups == 0
        assert h.sim.now == pytest.approx(3.0)

    def test_done_before_deadline_never_launches(self):
        h = _WatchdogHarness(first_estimate=1.0)
        proc = h.start()
        h.sim.schedule(1.0, lambda: (h.attempts[0].succeed(), h.done.succeed()))
        h.sim.run_until_complete(proc)
        assert h.backups == 0
