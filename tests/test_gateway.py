"""Multi-tenant SQL gateway: sessions, admission, fair share, kill/timeout (S52)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.cluster.metrics import MetricsTimeSeries, collect_metrics
from repro.errors import (
    AccessDeniedError,
    FeisuError,
    GatewayOverloadedError,
    ParseError,
    QueryCancelled,
    QueryTimeout,
    QuotaExceededError,
    SessionClosedError,
)
from repro.gateway import (
    GatewayConfig,
    QueryStatus,
    SessionState,
    TenantPolicy,
    estimate_query_memory,
    jain_index,
    percentile,
    run_sessions,
)
from repro.planner.physical import build_plan
from repro.security.acl import Quota
from repro.sql.analyzer import analyze
from repro.sql.parser import parse
from repro.workload.generator import MultiTenantConfig, multi_tenant_sessions


def make_cluster(gateway: GatewayConfig = None, **config_kwargs) -> FeisuCluster:
    """Small cluster with 3-block table T, dimension D, users alice/bob."""
    cluster = FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            gateway=gateway,
            **config_kwargs,
        )
    )
    rng = np.random.default_rng(11)
    n = 3000
    columns = {
        "c1": rng.integers(0, 100, n),
        "c2": rng.integers(0, 10, n),
        "clicks": rng.random(n),
    }
    schema = Schema.of(c1=DataType.INT64, c2=DataType.INT64, clicks=DataType.FLOAT64)
    cluster.load_table("T", schema, columns, storage="storage-a", block_rows=1000)
    dim = {
        "c2": np.arange(10),
        "weight": np.linspace(0.1, 1.0, 10),
    }
    cluster.load_table(
        "D",
        Schema.of(c2=DataType.INT64, weight=DataType.FLOAT64),
        dim,
        storage="storage-b",
        block_rows=100,
    )
    for user in ("alice", "bob"):
        cluster.create_user(user, domains=["*"])
        cluster.acl.grant(user, "T")
        cluster.acl.grant(user, "D")
    return cluster


def drain(gateway, sample=False):
    """Step the sim until idle; optionally sample concurrency maxima."""
    sim = gateway.cluster.sim
    max_running = 0
    max_by_tenant = {}
    while gateway.in_flight() > 0:
        if not sim.step():
            raise AssertionError("deadlock while draining the gateway")
        if sample:
            max_running = max(max_running, gateway.admission.running)
            for tq in gateway.admission.tenants():
                max_by_tenant[tq.name] = max(
                    max_by_tenant.get(tq.name, 0), tq.running
                )
    return max_running, max_by_tenant


# -- wiring & flag gating --------------------------------------------------


def test_flag_off_builds_no_gateway():
    cluster = make_cluster(gateway=None)
    assert cluster.gateway is None


def test_total_slots_must_fit_master():
    with pytest.raises(ValueError, match="max_concurrent_jobs"):
        make_cluster(
            gateway=GatewayConfig(total_slots=16), max_concurrent_jobs=8
        )
    with pytest.raises(ValueError, match="at least 1"):
        make_cluster(gateway=GatewayConfig(total_slots=0))


def test_open_session_authenticates():
    cluster = make_cluster(gateway=GatewayConfig())
    session = cluster.gateway.open_session("alice")
    assert session.tenant == "alice"  # defaults to the user
    assert session.state is SessionState.OPEN
    named = cluster.gateway.open_session("alice", tenant="ads")
    assert named.tenant == "ads"
    assert named.session_id != session.session_id
    with pytest.raises(FeisuError, match="unknown user"):
        cluster.gateway.open_session("mallory")


def test_session_query_matches_direct_path():
    sql = "SELECT c1, SUM(clicks) FROM T WHERE c2 < 5 GROUP BY c1"
    gated = make_cluster(gateway=GatewayConfig())
    session = gated.gateway.open_session("alice", tenant="ads")
    via_gateway = session.query(sql)
    direct = make_cluster(gateway=None).query(sql, user="alice")
    assert sorted(via_gateway.rows()) == sorted(direct.rows())


# -- pre-flight & session lifecycle ----------------------------------------


def test_preflight_rejects_before_admission():
    cluster = make_cluster(gateway=GatewayConfig())
    session = cluster.gateway.open_session("alice", tenant="ads")
    admitted_before = cluster.master.entry_guard.admitted
    with pytest.raises(ParseError):
        session.submit("SELEC c1 FROM T")
    cluster.acl.revoke("alice", "T")
    with pytest.raises(AccessDeniedError):
        session.submit("SELECT c1 FROM T")
    # Nothing reached admission control or the master's entry guard.
    assert cluster.master.entry_guard.admitted == admitted_before
    assert cluster.gateway.in_flight() == 0
    assert session.queries == []


def test_closed_session_rejects_submissions():
    cluster = make_cluster(gateway=GatewayConfig())
    session = cluster.gateway.open_session("alice")
    session.close()
    assert session.state is SessionState.CLOSED
    with pytest.raises(SessionClosedError):
        session.submit("SELECT COUNT(*) FROM T")


# -- admission control ------------------------------------------------------


def test_queue_overflow_rejects_with_backpressure():
    cfg = GatewayConfig(
        total_slots=1, default_policy=TenantPolicy(max_concurrent=1, max_queued=2)
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    # One runs, two queue, the fourth bounces.
    for _ in range(3):
        session.submit("SELECT COUNT(*) FROM T")
    with pytest.raises(GatewayOverloadedError, match="admission queue is full"):
        session.submit("SELECT COUNT(*) FROM T")
    tq = cluster.gateway.admission.tenant("ads")
    assert tq.rejected == 1
    assert tq.admitted == 3
    drain(cluster.gateway)
    assert tq.completed == 3


def test_slot_and_tenant_concurrency_limits_hold():
    cfg = GatewayConfig(
        total_slots=3,
        default_policy=TenantPolicy(max_concurrent=2, max_queued=64),
    )
    cluster = make_cluster(gateway=cfg)
    ads = cluster.gateway.open_session("alice", tenant="ads")
    search = cluster.gateway.open_session("bob", tenant="search")
    handles = []
    for i in range(8):
        handles.append(ads.submit(f"SELECT COUNT(*) FROM T WHERE c1 < {40 + i}"))
        handles.append(search.submit(f"SELECT COUNT(*) FROM T WHERE c1 > {40 + i}"))
    max_running, max_by_tenant = drain(cluster.gateway, sample=True)
    assert all(h.status is QueryStatus.SUCCEEDED for h in handles)
    assert max_running <= 3
    assert max_by_tenant["ads"] <= 2
    assert max_by_tenant["search"] <= 2
    assert max_running >= 2  # the pool actually ran concurrently


def test_memory_budget_serializes_queries():
    cluster = make_cluster(gateway=GatewayConfig())
    plan = build_plan(analyze(parse("SELECT COUNT(*) FROM T"), cluster.catalog))
    need = estimate_query_memory(plan, cluster.catalog)
    assert need > 0
    # Budget fits one query but not two: they must run one at a time.
    cfg = GatewayConfig(
        total_slots=4,
        memory_budget_bytes=need * 1.5,
        default_policy=TenantPolicy(max_concurrent=4, max_queued=64),
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    handles = [session.submit("SELECT COUNT(*) FROM T") for _ in range(4)]
    max_running, _ = drain(cluster.gateway, sample=True)
    assert max_running == 1
    assert all(h.status is QueryStatus.SUCCEEDED for h in handles)


def test_over_budget_singleton_still_runs():
    cluster = make_cluster(gateway=GatewayConfig())
    plan = build_plan(analyze(parse("SELECT COUNT(*) FROM T"), cluster.catalog))
    need = estimate_query_memory(plan, cluster.catalog)
    cfg = GatewayConfig(total_slots=2, memory_budget_bytes=need / 2)
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice")
    handle = session.submit("SELECT COUNT(*) FROM T")
    drain(cluster.gateway)
    assert handle.status is QueryStatus.SUCCEEDED


def test_join_memory_estimate_includes_broadcast():
    cluster = make_cluster(gateway=GatewayConfig())
    scan = build_plan(analyze(parse("SELECT COUNT(*) FROM T"), cluster.catalog))
    join = build_plan(
        analyze(
            parse("SELECT T.c1 FROM T JOIN D ON T.c2 = D.c2 WHERE D.weight > 0.5"),
            cluster.catalog,
        )
    )
    assert estimate_query_memory(join, cluster.catalog) > estimate_query_memory(
        scan, cluster.catalog
    )


# -- fair share -------------------------------------------------------------


def test_weighted_fair_share_tracks_weights():
    cfg = GatewayConfig(
        total_slots=2,
        quantum_units=3.0,
        tenants={
            "ads": TenantPolicy(weight=2.0, max_concurrent=2, max_queued=128),
            "search": TenantPolicy(weight=1.0, max_concurrent=2, max_queued=128),
        },
    )
    cluster = make_cluster(gateway=cfg)
    ads = cluster.gateway.open_session("alice", tenant="ads")
    search = cluster.gateway.open_session("bob", tenant="search")
    handles = []
    for i in range(20):
        handles.append(ads.submit(f"SELECT COUNT(*) FROM T WHERE c1 >= {i}"))
        handles.append(search.submit(f"SELECT COUNT(*) FROM T WHERE c1 <= {99 - i}"))
    drain(cluster.gateway)
    # Walk emissions in time order until the first tenant fully drains;
    # over that contended window service must track the 2:1 weights.
    emissions = sorted(handles, key=lambda h: h.emitted_at)
    remaining = {"ads": 20, "search": 20}
    units = {"ads": 0.0, "search": 0.0}
    for h in emissions:
        units[h.tenant] += h.cost_units
        remaining[h.tenant] -= 1
        if remaining[h.tenant] == 0:
            break
    ratio = units["ads"] / units["search"]
    assert 1.5 <= ratio <= 2.5, f"served-unit ratio {ratio:.2f} not ~2:1"


def test_fair_share_is_work_conserving():
    cfg = GatewayConfig(
        total_slots=2,
        tenants={"ads": TenantPolicy(max_concurrent=2, max_queued=128)},
    )
    cluster = make_cluster(gateway=cfg)
    ads = cluster.gateway.open_session("alice", tenant="ads")
    # Only one tenant has demand: it may use the whole pool.
    handles = [ads.submit("SELECT COUNT(*) FROM T") for _ in range(6)]
    max_running, _ = drain(cluster.gateway, sample=True)
    assert max_running == 2
    assert all(h.status is QueryStatus.SUCCEEDED for h in handles)


# -- quotas, kill, timeout --------------------------------------------------


def test_master_quota_enforced_on_gateway_path():
    cluster = make_cluster(gateway=GatewayConfig())
    cluster.master.entry_guard.quota.set_quota(
        "alice", Quota(max_queries_per_day=2)
    )
    session = cluster.gateway.open_session("alice", tenant="ads")
    handles = [session.submit("SELECT COUNT(*) FROM T") for _ in range(3)]
    drain(cluster.gateway)
    statuses = [h.status for h in handles]
    assert statuses.count(QueryStatus.SUCCEEDED) == 2
    assert statuses.count(QueryStatus.FAILED) == 1
    failed = next(h for h in handles if h.status is QueryStatus.FAILED)
    with pytest.raises(QuotaExceededError):
        failed.result()


def test_kill_queued_and_running_queries():
    cfg = GatewayConfig(
        total_slots=1, default_policy=TenantPolicy(max_concurrent=1, max_queued=64)
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    running = session.submit("SELECT COUNT(*) FROM T")
    queued = session.submit("SELECT SUM(clicks) FROM T")
    assert running.status is QueryStatus.RUNNING
    assert queued.status is QueryStatus.QUEUED
    assert cluster.gateway.kill_query(queued)
    assert queued.status is QueryStatus.KILLED
    assert queued.done.triggered
    assert cluster.gateway.kill_query(running)
    drain(cluster.gateway)
    assert running.status is QueryStatus.KILLED
    with pytest.raises(QueryCancelled):
        running.result()
    # Terminal handles can't be re-killed.
    assert not cluster.gateway.kill_query(running)


def test_kill_query_by_id():
    cfg = GatewayConfig(
        total_slots=1, default_policy=TenantPolicy(max_concurrent=1, max_queued=64)
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    running = session.submit("SELECT COUNT(*) FROM T")
    queued = session.submit("SELECT SUM(clicks) FROM T")
    # The operator surface: kill by id string, no handle required.
    assert cluster.gateway.kill_query(queued.query_id)
    assert queued.status is QueryStatus.KILLED
    assert cluster.gateway.kill_query(running.query_id)
    drain(cluster.gateway)
    assert running.status is QueryStatus.KILLED
    assert not cluster.gateway.kill_query(running.query_id)  # already terminal
    assert not cluster.gateway.kill_query("gq-does-not-exist")


def test_kill_session_releases_slots_for_other_tenants():
    cfg = GatewayConfig(
        total_slots=1, default_policy=TenantPolicy(max_concurrent=1, max_queued=64)
    )
    cluster = make_cluster(gateway=cfg)
    ads = cluster.gateway.open_session("alice", tenant="ads")
    search = cluster.gateway.open_session("bob", tenant="search")
    hog = [ads.submit("SELECT COUNT(*) FROM T") for _ in range(3)]
    starved = search.submit("SELECT SUM(clicks) FROM T")
    killed = ads.kill()
    assert killed == 3
    assert ads.state is SessionState.KILLED
    drain(cluster.gateway)
    assert all(h.status is QueryStatus.KILLED for h in hog)
    assert starved.status is QueryStatus.SUCCEEDED
    assert cluster.gateway.admission.running == 0
    with pytest.raises(SessionClosedError):
        ads.submit("SELECT COUNT(*) FROM T")


def test_timeout_covers_queue_wait_and_service():
    cfg = GatewayConfig(
        total_slots=1,
        default_policy=TenantPolicy(
            max_concurrent=1, max_queued=64, query_timeout_s=1e-6
        ),
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    # Policy default timeout: the running query is far slower than 1 µs.
    running = session.submit("SELECT COUNT(*) FROM T")
    # Explicit per-query override beats the policy default.
    patient = session.submit("SELECT SUM(clicks) FROM T", timeout_s=1e6)
    drain(cluster.gateway)
    assert running.status is QueryStatus.TIMED_OUT
    with pytest.raises(QueryTimeout):
        running.result()
    assert patient.status is QueryStatus.SUCCEEDED
    # A queued query can expire without ever being emitted.
    blocker = session.submit("SELECT COUNT(*) FROM T", timeout_s=1e6)
    never_runs = session.submit("SELECT COUNT(*) FROM T", timeout_s=1e-6)
    drain(cluster.gateway)
    assert blocker.status is QueryStatus.SUCCEEDED
    assert never_runs.status is QueryStatus.TIMED_OUT
    assert never_runs.emitted_at is None


# -- observability ----------------------------------------------------------


def test_metrics_surface_gateway_counters():
    cfg = GatewayConfig(
        total_slots=1, default_policy=TenantPolicy(max_concurrent=1, max_queued=64)
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    for _ in range(3):
        session.submit("SELECT COUNT(*) FROM T")
    mid = collect_metrics(cluster)
    assert mid.gateway_sessions_open == 1
    assert mid.gateway_running == 1
    assert mid.gateway_queue_depth == 2
    assert mid.gateway_tenant_queue_depth == {"ads": 2}
    assert mid.gateway_memory_in_use > 0
    drain(cluster.gateway)
    done = collect_metrics(cluster)
    assert done.gateway_completed == 3
    assert done.gateway_queue_depth == 0
    assert done.as_dict()["gateway_admitted"] == 3
    # Flag off: all gateway fields stay zero.
    plain = collect_metrics(make_cluster(gateway=None))
    assert plain.gateway_admitted == 0
    assert plain.gateway_tenant_queue_depth == {}


def test_metrics_time_series_carries_gateway_depth():
    cfg = GatewayConfig(
        total_slots=1, default_policy=TenantPolicy(max_concurrent=1, max_queued=64)
    )
    cluster = make_cluster(gateway=cfg)
    ts = MetricsTimeSeries(cluster, period_s=0.0001).start()
    session = cluster.gateway.open_session("alice", tenant="ads")
    for _ in range(4):
        session.submit("SELECT COUNT(*) FROM T")
    drain(cluster.gateway)
    depths = ts.series("gateway_queue_depth")
    assert depths, "sampler took no samples"
    assert max(depths) >= 1  # backlog was visible to the sampler


def test_gateway_trace_spans_record_queue_wait():
    cfg = GatewayConfig(
        total_slots=1,
        default_policy=TenantPolicy(max_concurrent=1, max_queued=64),
        trace=True,
    )
    cluster = make_cluster(gateway=cfg)
    session = cluster.gateway.open_session("alice", tenant="ads")
    first = session.submit("SELECT COUNT(*) FROM T")
    second = session.submit("SELECT SUM(clicks) FROM T")
    drain(cluster.gateway)
    spans = cluster.gateway.tracer.root.children
    assert len(spans) == 2
    waits = {}
    for span in spans:
        assert span.name == "gateway.query"
        assert span.end_s is not None
        (wait,) = [c for c in span.children if c.name == "queue_wait"]
        waits[span.tags["query_id"]] = wait.tags["wait_s"]
    assert waits[first.query_id] == 0.0
    assert waits[second.query_id] > 0.0
    assert waits[second.query_id] == pytest.approx(second.queue_wait_s)


# -- driver & helpers -------------------------------------------------------


def test_percentile_and_jain_helpers():
    assert percentile([], 0.5) == 0.0
    assert percentile([3.0], 0.99) == 3.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
    assert jain_index([]) == 1.0
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_run_sessions_replays_traces_and_reports():
    cfg = GatewayConfig(
        total_slots=2,
        default_policy=TenantPolicy(max_concurrent=2, max_queued=512),
    )
    cluster = make_cluster(gateway=cfg)
    schema = cluster.catalog.get("T").schema
    traces = multi_tenant_sessions(
        "T",
        schema,
        MultiTenantConfig(
            num_tenants=3,
            num_sessions=40,
            queries_per_session=2.0,
            think_time_s=0.2,
            open_window_s=1.0,
            seed=7,
        ),
        value_ranges={"c1": (0, 100), "c2": (0, 10)},
    )
    for user in sorted({t.user for t in traces}):
        cluster.create_user(user, domains=["*"])
        cluster.acl.grant(user, "T")
    report = run_sessions(cluster.gateway, traces, limit_s=1e6)
    assert report.sessions == 40
    assert report.submitted > 0
    assert report.completed == report.submitted
    assert report.failed == report.killed == report.timed_out == 0
    assert report.service_p99_s >= report.service_p50_s > 0
    assert report.total_p99_s >= report.service_p99_s
    assert 0.0 < report.jain_fairness <= 1.0
    assert set(report.per_tenant) == {t.tenant for t in traces}
    assert sum(tr.admitted for tr in report.per_tenant.values()) == report.submitted
    d = report.as_dict()
    assert d["sessions"] == 40.0
    assert d["jain_fairness"] == report.jain_fairness
