"""Thread-safety of the structures the fused pipeline's worker pool
shares: SmartIndexManager probe/insert and SsdCache get/put.

Eight OS threads hammer one instance with a Hypothesis-generated
operation mix; afterwards the books must balance exactly — byte
accounting equal to the sum over live entries, secondary indexes
consistent with the primary map.  Without the per-manager lock these
races corrupt ``_bytes`` and the LRU/eviction structures.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.smartindex import SmartIndexManager
from repro.planner.cnf import AtomicPredicate
from repro.sql.ast import BinaryOperator
from repro.storage.ssd_cache import SsdCache

THREADS = 8


def _hammer(fn, per_thread_ops):
    """Run ``fn(thread_id, op_index)`` from THREADS threads, amplifying
    any unsynchronized interleaving with a common start barrier."""
    barrier = threading.Barrier(THREADS)

    def worker(tid):
        barrier.wait()
        for i in range(per_thread_ops):
            fn(tid, i)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [pool.submit(worker, tid) for tid in range(THREADS)]
        for f in futures:
            f.result()  # surface worker exceptions


def _check_index_books(mgr: SmartIndexManager):
    entries = list(mgr._entries.values())
    assert mgr.used_bytes == sum(e.nbytes for e in entries)
    assert mgr.entry_count == len(entries)
    assert mgr.used_bytes <= mgr.memory_budget_bytes
    for block_id, keys in mgr._by_block.items():
        for key in keys:
            assert key in mgr._entries
            assert mgr._entries[key].block_id == block_id
    for pred_key, keys in mgr._by_predicate.items():
        for key in keys:
            assert key in mgr._entries
            assert mgr._entries[key].predicate_key == pred_key
    for key, entry in mgr._entries.items():
        assert key in mgr._by_block[entry.block_id]
        assert key in mgr._by_predicate[entry.predicate_key]


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 2**31 - 1), semantic=st.booleans())
def test_smartindex_hammer(seed, semantic):
    rng = np.random.default_rng(seed)
    # A budget small enough that eviction runs concurrently with insert.
    mgr = SmartIndexManager(
        memory_budget_bytes=64 * 1024, compress=False, semantic=semantic
    )
    atoms = [
        AtomicPredicate(f"c{i % 5}", BinaryOperator.GT, int(v))
        for i, v in enumerate(rng.integers(0, 50, 64))
    ]
    blocks = [f"b{i}" for i in range(8)]
    masks = [rng.random(512) < 0.5 for _ in range(8)]
    plans = rng.integers(0, 2**31 - 1, THREADS)

    def ops(tid, i):
        r = np.random.default_rng(plans[tid] + i)
        atom = atoms[int(r.integers(0, len(atoms)))]
        block = blocks[int(r.integers(0, len(blocks)))]
        now = float(i)
        choice = int(r.integers(0, 5))
        if choice == 0:
            mgr.insert(block, atom, masks[int(r.integers(0, 8))], now,
                       saved_s=0.001 if semantic else 0.0)
        elif choice == 1:
            mgr.lookup_atom(block, atom, now)
        elif choice == 2:
            mgr.invalidate_block(block)
        elif choice == 3:
            mgr.prefer_predicate(atom.key)
        else:
            mgr.unprefer_predicate(atom.key)

    _hammer(ops, per_thread_ops=60)
    _check_index_books(mgr)


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(0, 2**31 - 1), admit_all=st.booleans())
def test_ssd_cache_hammer(seed, admit_all):
    rng = np.random.default_rng(seed)
    cache = SsdCache(capacity_bytes=16 * 1024,
                     admit_preferred_only=not admit_all)
    paths = [f"/t/p{i % 4}/blk{i}" for i in range(24)]
    cache.prefer("/t/p0/")
    cache.prefer("/t/p1/")
    payloads = [bytes(int(n)) for n in rng.integers(1, 2048, 16)]
    plans = rng.integers(0, 2**31 - 1, THREADS)

    def ops(tid, i):
        r = np.random.default_rng(plans[tid] + i)
        path = paths[int(r.integers(0, len(paths)))]
        choice = int(r.integers(0, 5))
        if choice <= 1:
            cache.put(path, payloads[int(r.integers(0, len(payloads)))])
        elif choice == 2:
            cache.get(path)
        elif choice == 3:
            cache.invalidate(path)
        else:
            cache.prefer("/t/p2/") if tid % 2 else cache.unprefer("/t/p2/")

    _hammer(ops, per_thread_ops=60)
    assert cache.used_bytes == sum(len(v) for v in cache._entries.values())
    assert cache.entry_count == len(cache._entries)
    assert cache.used_bytes <= cache.capacity_bytes
    assert cache.hits + cache.misses >= 0
