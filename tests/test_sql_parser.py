"""Parser: the full §III-A grammar."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    AggregateCall,
    BinaryOp,
    BinaryOperator,
    Column,
    JoinKind,
    Literal,
    Negate,
    NotOp,
    Star,
)
from repro.sql.parser import parse, parse_expression


def test_minimal_select():
    q = parse("SELECT a FROM t")
    assert q.select_items[0].expr == Column("a")
    assert q.tables[0].name == "t"
    assert q.where is None and q.limit is None


def test_select_star():
    q = parse("SELECT * FROM t")
    assert isinstance(q.select_items[0].expr, Star)


def test_aliases_with_and_without_as():
    q = parse("SELECT a AS x, b y FROM t1 AS u")
    assert q.select_items[0].alias == "x"
    assert q.select_items[1].alias == "y"
    assert q.tables[0].alias == "u" and q.tables[0].binding == "u"


def test_where_precedence_or_lowest():
    q = parse("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3")
    assert isinstance(q.where, BinaryOp) and q.where.op is BinaryOperator.OR
    assert q.where.left.op is BinaryOperator.AND


def test_not_precedence():
    q = parse("SELECT a FROM t WHERE NOT a > 1 AND b < 2")
    assert q.where.op is BinaryOperator.AND
    assert isinstance(q.where.left, NotOp)


def test_arithmetic_precedence():
    e = parse_expression("1 + 2 * 3")
    assert e.op is BinaryOperator.ADD
    assert e.right.op is BinaryOperator.MUL


def test_parentheses_override():
    e = parse_expression("(1 + 2) * 3")
    assert e.op is BinaryOperator.MUL


def test_unary_minus():
    e = parse_expression("-x + 1")
    assert e.op is BinaryOperator.ADD
    assert isinstance(e.left, Negate)


def test_contains_operator():
    q = parse("SELECT a FROM t WHERE url CONTAINS 'baidu'")
    assert q.where.op is BinaryOperator.CONTAINS
    assert q.where.right == Literal("baidu")


def test_count_star_and_within():
    q = parse("SELECT COUNT(*) FROM t")
    agg = q.select_items[0].expr
    assert isinstance(agg, AggregateCall) and agg.func == "COUNT"
    assert isinstance(agg.argument, Star)

    q2 = parse("SELECT SUM(x) WITHIN y FROM t")
    agg2 = q2.select_items[0].expr
    assert agg2.within == Column("y")


def test_star_only_in_count():
    with pytest.raises(ParseError):
        parse("SELECT SUM(*) FROM t")


def test_joins_all_kinds():
    q = parse(
        "SELECT a FROM t JOIN u ON t.k = u.k "
        "LEFT OUTER JOIN v ON t.k = v.k "
        "RIGHT JOIN w ON t.k = w.k "
        "CROSS JOIN z"
    )
    kinds = [j.kind for j in q.joins]
    assert kinds == [JoinKind.INNER, JoinKind.LEFT_OUTER, JoinKind.RIGHT_OUTER, JoinKind.CROSS]
    assert q.joins[3].condition is None


def test_inner_join_keyword():
    q = parse("SELECT a FROM t INNER JOIN u ON t.k = u.k")
    assert q.joins[0].kind is JoinKind.INNER


def test_join_requires_on():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t JOIN u")


def test_group_by_having_order_limit():
    q = parse(
        "SELECT a, COUNT(*) n FROM t WHERE b > 0 "
        "GROUP BY a HAVING COUNT(*) > 5 ORDER BY n DESC, a LIMIT 10"
    )
    assert q.group_by == (Column("a"),)
    assert q.having is not None
    assert q.order_by[0].ascending is False
    assert q.order_by[1].ascending is True
    assert q.limit == 10


def test_limit_must_be_integer():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t LIMIT 1.5")


def test_qualified_columns():
    q = parse("SELECT t.a FROM t")
    assert q.select_items[0].expr == Column("a", table="t")


def test_scalar_functions():
    e = parse_expression("LENGTH(LOWER(s))")
    assert e.name == "LENGTH"
    assert e.args[0].name == "LOWER"


def test_unknown_function_rejected():
    with pytest.raises(ParseError, match="unknown function"):
        parse("SELECT FOO(x) FROM t")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError, match="trailing"):
        parse("SELECT a FROM t extra nonsense stuff")


def test_semicolon_accepted():
    parse("SELECT a FROM t;")


def test_missing_from_rejected():
    with pytest.raises(ParseError, match="FROM"):
        parse("SELECT a")


def test_string_comparisons_parse():
    q = parse("SELECT a FROM t WHERE province = 'beijing'")
    assert q.where.right == Literal("beijing")


def test_boolean_literals():
    e = parse_expression("TRUE")
    assert e == Literal(True)
    assert parse_expression("FALSE") == Literal(False)


def test_negative_literal_in_comparison():
    q = parse("SELECT a FROM t WHERE b > -5")
    assert isinstance(q.where.right, Negate)


def test_paper_example_query_q1():
    q = parse("SELECT COUNT(*) FROM T WHERE (c2 > 0) AND (c2 <= 5)")
    assert q.where.op is BinaryOperator.AND


def test_paper_example_query_q11_negation():
    # Fig 7's Q11: the NOT-transformed variant of Q10.
    q = parse("SELECT c1 FROM T WHERE c2 > 0 AND NOT (c2 > 5)")
    assert isinstance(q.where.right, NotOp)
