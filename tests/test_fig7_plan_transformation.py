"""The paper's Fig 7 walkthrough, end to end.

Fig 7 traces three queries through SmartIndex:

* Q10: ``SELECT ... FROM T WHERE c2 > 0 AND c2 <= 5`` — evaluated cold,
  creating indices for both predicates;
* Q11: ``... WHERE c2 > 0 AND NOT (c2 > 5)`` — textually different, but
  the leaf's conjunctive-form transformation maps it onto the same
  indices (the ``NOT (c2 > 5)`` conjunct resolves via bit-NOT);
* the aggregation runs entirely in memory: "No scan operation is
  actually needed."

This test reproduces the exact scenario at every level: CNF keys, index
manager behaviour, executor I/O accounting, and the distributed answer.
"""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, Schema, DataType
from repro.planner.cnf import to_cnf
from repro.sql.parser import parse, parse_expression

Q10 = "SELECT COUNT(*) FROM T WHERE (c2 > 0) AND (c2 <= 5)"
Q11 = "SELECT COUNT(*) FROM T WHERE (c2 > 0) AND NOT (c2 > 5)"
Q12_PREDICATE_VARIANT = "SELECT COUNT(*) FROM T WHERE (0 < c2) AND NOT (5 < c2)"


@pytest.fixture()
def cluster():
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4))
    rng = np.random.default_rng(70)
    n = 8000
    cluster.load_table(
        "T",
        Schema.of(c1=DataType.INT64, c2=DataType.INT64),
        {"c1": rng.integers(0, 100, n), "c2": rng.integers(0, 10, n)},
        storage="storage-a",
        block_rows=1000,
    )
    return cluster


def test_cnf_keys_identical_across_variants():
    keys10 = set(to_cnf(parse(Q10).where).predicate_keys())
    keys11 = set(to_cnf(parse(Q11).where).predicate_keys())
    keys12 = set(to_cnf(parse(Q12_PREDICATE_VARIANT).where).predicate_keys())
    assert keys10 == keys11 == keys12 == {"c2 > 0", "c2 <= 5"}


def test_fig7_full_walkthrough(cluster):
    t = cluster.catalog.get("T")
    n_blocks = len(t.blocks)

    # Q10 runs cold: every block evaluates both predicates and creates
    # one SmartIndex entry per (block, predicate).
    r10 = cluster.query(Q10)
    stats = cluster.aggregate_index_stats()
    assert stats.creations == 2 * n_blocks
    assert r10.stats["index_full_covers"] == 0

    # Q11: "the scan of the data block and the evaluation of the
    # predicate are avoided" — full cover on every block, zero scan I/O
    # (COUNT(*) needs no payload column), all computation in memory.
    r11 = cluster.query(Q11)
    assert r11.rows() == r10.rows()
    assert r11.stats["index_full_covers"] == n_blocks
    assert r11.stats["io_bytes_modeled"] == 0.0
    stats = cluster.aggregate_index_stats()
    assert stats.creations == 2 * n_blocks  # nothing new was created

    # The flipped-literal variant also lands on the same entries.
    r12 = cluster.query(Q12_PREDICATE_VARIANT)
    assert r12.rows() == r10.rows()
    assert r12.stats["index_full_covers"] == n_blocks


def test_fig7_complement_direction(cluster):
    """Store only `c2 > 5`; a query for `c2 <= 5` answers via bit-NOT."""
    cluster.query("SELECT COUNT(*) FROM T WHERE c2 > 5")
    before = cluster.aggregate_index_stats().complement_hits
    r = cluster.query("SELECT COUNT(*) FROM T WHERE c2 <= 5")
    after = cluster.aggregate_index_stats().complement_hits
    assert after > before
    total = cluster.query("SELECT COUNT(*) FROM T").rows()[0][0]
    gt5 = cluster.query("SELECT COUNT(*) FROM T WHERE c2 > 5").rows()[0][0]
    assert r.rows()[0][0] == total - gt5
