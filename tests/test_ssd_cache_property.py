"""Property tests: SsdCache accounting and preference policy.

Hypothesis drives random operation sequences — get/put/prefer/unprefer/
invalidate over a small key space against a tiny capacity — and after
*every* step checks the cache's books against its own entry table:

* ``used_bytes`` equals the byte sum of resident entries and never
  exceeds capacity;
* hit/miss counters advance exactly per observed residency;
* a non-preferred admission never displaces a resident preferred entry
  (the PR 5 inversion fix), while ``put`` return values stay truthful
  about residency.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.ssd_cache import SsdCache

settings.register_profile("ssd_cache", deadline=None, max_examples=120)
settings.load_profile("ssd_cache")

KEYS = ["/hot/a", "/hot/b", "/cold/a", "/cold/b", "/cold/c", "/x"]
PREFIXES = ["/hot", "/cold", "/x", "/"]

op_strategy = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(1, 24)),
    st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(0)),
    st.tuples(st.just("prefer"), st.sampled_from(PREFIXES), st.just(0)),
    st.tuples(st.just("unprefer"), st.sampled_from(PREFIXES), st.just(0)),
    st.tuples(st.just("invalidate"), st.sampled_from(KEYS), st.just(0)),
)


def _check_books(cache: SsdCache) -> None:
    assert cache.used_bytes == sum(len(v) for v in cache._entries.values())
    assert cache.used_bytes <= cache.capacity_bytes
    assert cache.entry_count == len(cache._entries)


@given(
    ops=st.lists(op_strategy, min_size=1, max_size=60),
    capacity=st.integers(8, 48),
    admit_all=st.booleans(),
)
def test_random_sequences_keep_books_exact(ops, capacity, admit_all):
    cache = SsdCache(capacity, admit_preferred_only=not admit_all)
    expected_hits = 0
    expected_misses = 0
    for op, key, size in ops:
        if op == "put":
            data = key.encode()[:1] * size
            resident_preferred_before = {
                k for k in cache._entries if cache.is_preferred(k) and k != key
            }
            admitted = cache.put(key, data)
            if admitted:
                assert cache._entries[key] == data
            else:
                # Truthful rejection AND no stale bytes left behind.
                assert key not in cache._entries
            if not cache.is_preferred(key):
                # The inversion fix: a non-preferred admission never
                # displaces a resident preferred entry.
                for k in resident_preferred_before:
                    assert k in cache._entries
        elif op == "get":
            was_resident = key in cache._entries
            data = cache.get(key)
            if was_resident:
                expected_hits += 1
                assert data is not None
            else:
                expected_misses += 1
                assert data is None
        elif op == "prefer":
            cache.prefer(key)
        elif op == "unprefer":
            cache.unprefer(key)
        elif op == "invalidate":
            cache.invalidate(key)
            assert key not in cache._entries
        _check_books(cache)
        assert cache.hits == expected_hits
        assert cache.misses == expected_misses
    stats = cache.stats()
    assert stats["hits"] == expected_hits and stats["misses"] == expected_misses
    if expected_hits + expected_misses:
        assert stats["miss_ratio"] == pytest.approx(
            expected_misses / (expected_hits + expected_misses)
        )


@given(
    ops=st.lists(op_strategy, min_size=1, max_size=40),
    capacity=st.integers(8, 48),
)
def test_preferred_only_mode_admits_only_preferred(ops, capacity):
    cache = SsdCache(capacity, admit_preferred_only=True)
    for op, key, size in ops:
        if op == "put":
            admitted = cache.put(key, b"z" * size)
            if admitted:
                assert cache.is_preferred(key)
        elif op == "get":
            cache.get(key)
        elif op == "prefer":
            cache.prefer(key)
        elif op == "unprefer":
            cache.unprefer(key)
        elif op == "invalidate":
            cache.invalidate(key)
        _check_books(cache)


@given(ops=st.lists(op_strategy, min_size=1, max_size=40))
def test_is_preferred_memo_matches_prefix_scan(ops):
    cache = SsdCache(64, admit_preferred_only=False)
    for op, key, size in ops:
        if op == "put":
            cache.put(key, b"z" * size)
        elif op == "prefer":
            cache.prefer(key)
        elif op == "unprefer":
            cache.unprefer(key)
        for probe in KEYS:
            assert cache.is_preferred(probe) == any(
                probe.startswith(p) for p in cache.preferred_prefixes()
            )
