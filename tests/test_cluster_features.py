"""Result spilling, resource reclamation, sharded cluster management,
metrics, and fault injection through the full stack."""

import numpy as np
import pytest

from repro import FeisuCluster, FeisuConfig, JobOptions, LeafConfig, Schema, DataType
from repro.cluster.sharding import ShardedClusterManager
from repro.errors import ClusterStateError
from repro.sim.events import Simulator
from repro.sim.netmodel import NodeAddress
from repro.cluster.messages import WorkerLoad


def _cluster(**kw):
    cfg = FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4, **kw)
    cluster = FeisuCluster(cfg)
    n = 4000
    rng = np.random.default_rng(3)
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64, s=DataType.STRING),
        {
            "a": rng.integers(0, 50, n),
            "b": rng.random(n),
            "s": np.array([f"row{i % 9}" for i in range(n)], dtype=object),
        },
        storage="storage-a",
        block_rows=800,
        scale_factor=1000.0,
    )
    return cluster


# -- §V-C result spilling -------------------------------------------------------


def test_big_results_spill_to_global_storage():
    cluster = _cluster()
    # wide projection of most rows; tiny threshold forces the write flow
    options = JobOptions(spill_threshold_bytes=10_000.0)
    job = cluster.query_job("SELECT a, b, s FROM T WHERE a >= 0", options=options)
    assert job.result is not None
    assert job.stats.results_spilled == job.stats.tasks_total
    assert job.result.num_rows == 4000
    # spill files are cleaned up after the master fetches them
    assert cluster.storage_a.list_paths("/tmp/spill/") == []


def test_spilled_results_identical_to_direct():
    direct = _cluster()
    spilled = _cluster()
    sql = "SELECT a, COUNT(*) n, SUM(b) sb FROM T WHERE a < 30 GROUP BY a ORDER BY a"
    r1 = direct.query(sql)
    job = spilled.query_job(sql, options=JobOptions(spill_threshold_bytes=1.0))
    r2 = job.result
    assert job.stats.results_spilled > 0
    rows1, rows2 = r1.rows(), r2.rows()
    assert len(rows1) == len(rows2)
    for a, b in zip(rows1, rows2):
        assert a[0] == b[0] and a[1] == b[1]
        assert a[2] == pytest.approx(b[2])


def test_small_results_do_not_spill():
    cluster = _cluster()
    job = cluster.query_job("SELECT COUNT(*) FROM T")
    assert job.stats.results_spilled == 0


def test_spill_costs_time():
    fast = _cluster()
    slow = _cluster()
    sql = "SELECT a, b, s FROM T WHERE a >= 0"
    t_direct = fast.query(sql).stats["response_time_s"]
    job = slow.query_job(sql, options=JobOptions(spill_threshold_bytes=10_000.0))
    t_spill = job.stats.response_time_s
    assert t_spill > t_direct  # the write+fetch detour isn't free


# -- §V-B resource reclamation ---------------------------------------------------


def test_reclaimed_slots_slow_but_never_break():
    normal = _cluster()
    squeezed = _cluster()
    squeezed.reclaim_business_resources("storage-a", slots=1)
    sql = "SELECT SUM(b) FROM T WHERE a >= 0"
    r_normal = normal.query(sql)
    r_squeezed = squeezed.query(sql)
    assert r_squeezed.rows()[0][0] == pytest.approx(r_normal.rows()[0][0])
    assert r_squeezed.stats["response_time_s"] >= r_normal.stats["response_time_s"]
    # releasing restores the agreement's capacity
    squeezed.release_business_resources("storage-a")
    leaf = squeezed.leaves[0]
    assert leaf.slot_capacity("storage-a") == squeezed.storage_a.profile.tasks_per_node


def test_reclaim_unknown_storage_rejected():
    cluster = _cluster()
    with pytest.raises(ClusterStateError):
        cluster.leaves[0].reclaim_slots("nope", 1)
    with pytest.raises(ClusterStateError):
        cluster.leaves[0].restore_slots("nope")


# -- §VII sharded cluster manager ---------------------------------------------------


def test_sharded_manager_spreads_workers():
    sim = Simulator()
    mgr = ShardedClusterManager(sim, shards=3)
    for i in range(60):
        mgr.register(f"w{i}", NodeAddress(0, 0, 0))
    sizes = mgr.shard_sizes()
    assert sum(sizes) == 60
    assert all(size > 0 for size in sizes)
    assert mgr.worker_count() == 60


def test_sharded_manager_same_interface():
    sim = Simulator()
    mgr = ShardedClusterManager(sim, shards=2)
    mgr.register("w0", NodeAddress(0, 1, 2), is_stem=True)
    mgr.heartbeat("w0", WorkerLoad(running_tasks=1))
    assert mgr.is_alive("w0")
    assert mgr.load_of("w0").running_tasks == 1
    assert mgr.address_of("w0") == NodeAddress(0, 1, 2)
    assert [w.worker_id for w in mgr.live_workers(stems=True)] == ["w0"]
    assert mgr.sweep() == []


def test_shard_capacity_overflow_and_scale_out():
    sim = Simulator()
    mgr = ShardedClusterManager(sim, shards=1, shard_capacity=4)
    for i in range(4):
        mgr.register(f"w{i}", NodeAddress(0, 0, 0))
    with pytest.raises(ClusterStateError, match="add_shard"):
        mgr.register("overflow", NodeAddress(0, 0, 0))
    mgr.add_shard()
    mgr.register("overflow", NodeAddress(0, 0, 0))
    assert mgr.worker_count() == 5
    assert mgr.is_alive("overflow")


def test_sharded_manager_accepts_real_worker_population():
    cluster = _cluster()
    sim = Simulator()
    mgr = ShardedClusterManager(sim, shards=2)
    for leaf in cluster.leaves:
        mgr.register(leaf.worker_id, leaf.address)
    assert mgr.worker_count() == len(cluster.leaves)


# -- metrics ------------------------------------------------------------------------


def test_metrics_snapshot_contents():
    cluster = _cluster()
    cluster.query("SELECT COUNT(*) FROM T WHERE a > 10")
    cluster.sim.run(until=cluster.sim.now + 20.0)  # let heartbeats flow
    m = cluster.metrics()
    assert m.leaves_total == 8 and m.leaves_alive == 8
    assert m.jobs_total == 1 and m.jobs_succeeded == 1
    assert m.tasks_completed > 0
    assert m.disk.total_bytes > 0
    assert 0.0 <= m.disk.mean_utilization <= m.disk.max_utilization <= 1.0
    assert m.network_total_bytes > 0
    assert m.index_entries > 0 and m.index_memory_bytes > 0
    assert m.heartbeats_received > 0
    d = m.as_dict()
    assert d["jobs_succeeded"] == 1


def test_metrics_track_failures():
    cluster = _cluster()
    for leaf in cluster.leaves:
        leaf.crash()
    cluster.query_job("SELECT COUNT(*) FROM T")
    m = cluster.metrics()
    assert m.leaves_alive == 0
    assert m.jobs_failed + m.jobs_timed_out >= 0  # job recorded either way
    assert m.jobs_total == 1


# -- fault injection ------------------------------------------------------------------


def test_replica_loss_falls_back_to_remaining_replicas():
    cluster = _cluster()
    table = cluster.catalog.get("T")
    # Drop the first replica of every block: locality placement adapts.
    for ref in table.blocks:
        system, inner = cluster.router.resolve(ref.path)
        replicas = system.locations(inner)
        system.drop_replica(inner, replicas[0])
    r = cluster.query("SELECT COUNT(*) FROM T")
    assert r.rows()[0][0] == 4000


def test_stem_crash_falls_back_to_other_stem():
    cluster = _cluster()
    cluster.stems[0].crash()
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a < 10")
    assert r.num_rows == 1


def test_all_stems_down_leaves_talk_to_master():
    cluster = _cluster()
    for stem in cluster.stems:
        stem.crash()
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a < 10")
    assert r.num_rows == 1


def test_crash_mid_job_recovers_via_backup():
    cluster = _cluster()
    job, done = cluster.submit("SELECT SUM(b) FROM T WHERE a >= 0")
    # Kill a leaf shortly after dispatch, while tasks are in flight.
    victim = cluster.leaves[2]
    cluster.sim.schedule(0.001, victim.crash)
    cluster.sim.run_until_complete(done)
    assert job.result is not None
    expected = cluster.query("SELECT SUM(b) FROM T WHERE a >= 0")  # victim still down
    assert job.result.rows()[0][0] == pytest.approx(expected.rows()[0][0])


# -- datacenter-level stems (deeper tree) ------------------------------------------


def test_dc_stems_created_for_multi_dc():
    cfg = FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4)
    cluster = FeisuCluster(cfg)
    dc_stems = [s for s in cluster.stems if s.worker_id.startswith("dcstem-")]
    rack_stems = [s for s in cluster.stems if s.worker_id.startswith("stem-")]
    assert len(dc_stems) == 2
    assert len(rack_stems) == 4


def test_results_aggregate_through_dc_stems():
    cfg = FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4)
    cluster = FeisuCluster(cfg)
    n = 4000
    cluster.load_table(
        "T",
        Schema.of(a=DataType.INT64),
        {"a": np.arange(n)},
        storage="storage-a",
        block_rows=500,
    )
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a >= 0")
    assert r.rows()[0][0] == n
    dc_stems = [s for s in cluster.stems if s.worker_id.startswith("dcstem-")]
    assert sum(s.results_merged for s in dc_stems) > 0


def test_single_dc_has_no_dc_stem_layer():
    cfg = FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=4)
    cluster = FeisuCluster(cfg)
    assert not any(s.worker_id.startswith("dcstem-") for s in cluster.stems)


def test_dead_dc_stem_skipped():
    cfg = FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4)
    cluster = FeisuCluster(cfg)
    cluster.load_table(
        "T", Schema.of(a=DataType.INT64), {"a": np.arange(1000)}, storage="storage-a",
        block_rows=250,
    )
    for s in cluster.stems:
        if s.worker_id.startswith("dcstem-"):
            s.crash()
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a >= 0")
    assert r.rows()[0][0] == 1000


# -- §III-C candidate / emitting job queue -------------------------------------------


def test_job_queue_caps_concurrency():
    cluster = _cluster()
    cluster.master.max_concurrent_jobs = 2
    jobs = [cluster.submit(f"SELECT COUNT(*) FROM T WHERE a > {i}") for i in range(5)]
    # three of the five jobs must wait in the candidate queue
    assert cluster.master.queued_jobs == 3
    for _job, done in jobs:
        cluster.sim.run_until_complete(done)
    assert cluster.master.queued_jobs == 0
    assert all(job.status.name == "SUCCEEDED" for job, _ in jobs)
    # queued jobs started only after earlier ones freed a slot
    starts = sorted(job.started_at for job, _ in jobs)
    finishes = sorted(job.finished_at for job, _ in jobs)
    assert starts[2] >= finishes[0]


def test_job_queue_fifo_order():
    cluster = _cluster()
    cluster.master.max_concurrent_jobs = 1
    jobs = [cluster.submit(f"SELECT COUNT(*) FROM T WHERE a >= {i}") for i in range(4)]
    for _job, done in jobs:
        cluster.sim.run_until_complete(done)
    starts = [job.started_at for job, _ in jobs]
    assert starts == sorted(starts)


def test_queueing_delay_counts_into_response_time():
    cluster = _cluster()
    cluster.master.max_concurrent_jobs = 1
    jobs = [cluster.submit("SELECT SUM(b) FROM T WHERE a >= 0") for _ in range(3)]
    for _job, done in jobs:
        cluster.sim.run_until_complete(done)
    # identical work, but the third job's response includes its wait...
    r = [job.stats.response_time_s for job, _ in jobs]
    assert r[2] > r[0]
    # ...unless it was served by identical-task reuse (it is!), in which
    # case the job manager's sharing kept the queue cheap — verify which.
    reused = sum(job.stats.tasks_reused for job, _ in jobs)
    assert reused >= 0  # documented behaviour; reuse may absorb the wait


# -- striped tables: one table over heterogeneous storage systems ------------------


def test_striped_table_spans_storage_systems():
    cluster = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4))
    n = 4000
    rng = np.random.default_rng(6)
    table = cluster.load_table_striped(
        "Mixed",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
        {"a": rng.integers(0, 30, n), "b": rng.random(n)},
        storages=["storage-a", "fatman"],
        block_rows=500,
    )
    prefixes = {ref.path.split("/")[1] for ref in table.blocks}
    assert prefixes == {"hdfs", "ffs"}


def test_striped_table_queries_correctly():
    cluster = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4))
    n = 4000
    rng = np.random.default_rng(6)
    cols = {"a": rng.integers(0, 30, n), "b": rng.random(n)}
    cluster.load_table_striped(
        "Mixed",
        Schema.of(a=DataType.INT64, b=DataType.FLOAT64),
        cols,
        storages=["storage-a", "fatman"],
        block_rows=500,
    )
    r = cluster.query("SELECT COUNT(*) FROM Mixed WHERE a < 15")
    assert r.rows()[0][0] == int((cols["a"] < 15).sum())
    # tasks honoured each system's slot agreement (fatman: 1 per node)
    leaf = cluster.leaves[0]
    assert leaf.slot_capacity("fatman") == 1
    assert leaf.slot_capacity("storage-a") == 4


def test_striped_cold_blocks_dominate_latency():
    shape = dict(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4)
    hot = FeisuCluster(FeisuConfig(**shape))
    mixed = FeisuCluster(FeisuConfig(**shape))
    n = 4000
    rng = np.random.default_rng(6)
    cols = {"a": rng.integers(0, 30, n), "b": rng.random(n)}
    schema = Schema.of(a=DataType.INT64, b=DataType.FLOAT64)
    hot.load_table("T", schema, cols, storage="storage-a", block_rows=500, scale_factor=200.0)
    mixed.load_table_striped(
        "T", schema, cols, storages=["storage-a", "fatman"], block_rows=500, scale_factor=200.0
    )
    t_hot = hot.query("SELECT SUM(b) FROM T WHERE a >= 0").stats["response_time_s"]
    t_mixed = mixed.query("SELECT SUM(b) FROM T WHERE a >= 0").stats["response_time_s"]
    assert t_mixed > t_hot  # cold stripes pay Fatman's first-byte latency


# -- master failover with the replicated job ledger ---------------------------------


def test_master_failover_preserves_history_and_serves_new_queries():
    cluster = _cluster()
    cluster.query("SELECT COUNT(*) FROM T WHERE a > 5")
    cluster.query("SELECT COUNT(*) FROM T WHERE a > 6")
    before = {e.job_id: e.status for e in cluster.job_ledger.entries()}
    assert len(before) == 2 and all(s == "succeeded" for s in before.values())

    aborted = cluster.fail_master()
    assert aborted == 0  # nothing was in flight
    assert cluster.job_ledger.failovers == 1
    # history survived the failover
    after = {e.job_id: e.status for e in cluster.job_ledger.entries()}
    assert after == before
    # the promoted deployment serves queries immediately
    r = cluster.query("SELECT COUNT(*) FROM T WHERE a > 7")
    assert r.num_rows == 1
    assert len(cluster.job_ledger.entries()) == 3


def test_master_failover_aborts_inflight_jobs():
    cluster = _cluster()
    job, done = cluster.submit("SELECT SUM(b) FROM T WHERE a >= 0")
    aborted = cluster.fail_master()
    assert aborted == 1
    cluster.sim.run_until_complete(done)
    assert job.error is not None
    assert "failed over" in str(job.error)
    # the ledger recorded the aborted job as failed
    entry = cluster.job_ledger.get(job.job_id)
    assert entry is not None and entry.status == "failed"
    # client resubmits against the new master and succeeds
    r = cluster.query("SELECT SUM(b) FROM T WHERE a >= 0")
    assert r.num_rows == 1


def test_old_master_rejects_submissions():
    cluster = _cluster()
    old = cluster.master
    cluster.fail_master()
    with pytest.raises(ClusterStateError, match="shut down"):
        old.submit("SELECT COUNT(*) FROM T", "analyst", cluster.credential_of("analyst"))


def test_ledger_monitoring_view_served_by_shadow():
    cluster = _cluster()
    cluster.query("SELECT COUNT(*) FROM T")
    # the shadow may lag slightly but holds the same structure
    primary = cluster.job_ledger.entries()
    shadow = cluster.job_ledger.monitoring_entries()
    assert len(shadow) <= len(primary)


# -- block sampling (§II case 3: sampled indicators) ---------------------------------


def test_sampling_scans_fraction_of_blocks():
    cluster = _cluster()
    full = cluster.query_job("SELECT COUNT(*) FROM T")
    sampled = cluster.query_job(
        "SELECT COUNT(*) FROM T", options=JobOptions(sample_block_ratio=0.5)
    )
    assert sampled.stats.tasks_total == full.stats.tasks_total
    import math

    expected = math.ceil(full.stats.tasks_completed * 0.5)
    assert sampled.stats.tasks_completed == expected
    assert sampled.result.processed_ratio == pytest.approx(
        expected / full.stats.tasks_total
    )
    # the sampled count is an indicator in the right ballpark
    assert 0 < sampled.result.rows()[0][0] < full.result.rows()[0][0]


def test_sampling_is_deterministic():
    cluster = _cluster()
    opts = JobOptions(sample_block_ratio=0.4)
    a = cluster.query("SELECT COUNT(*) FROM T", options=opts).rows()
    b = cluster.query("SELECT COUNT(*) FROM T", options=opts).rows()
    assert a == b


def test_sampling_cheaper_than_full_scan():
    cluster = _cluster()
    t_full = cluster.query("SELECT SUM(b) FROM T WHERE a >= 0").stats["response_time_s"]
    t_sample = cluster.query(
        "SELECT SUM(b) FROM T WHERE a >= 0", options=JobOptions(sample_block_ratio=0.25)
    ).stats["response_time_s"]
    assert t_sample < t_full


def test_sampling_extremes():
    cluster = _cluster()
    nothing = cluster.query("SELECT COUNT(*) FROM T", options=JobOptions(sample_block_ratio=0.0))
    assert nothing.rows() == [(0,)]
    everything = cluster.query(
        "SELECT COUNT(*) FROM T", options=JobOptions(sample_block_ratio=1.0)
    )
    assert everything.rows()[0][0] == 4000
    tiny = cluster.query("SELECT COUNT(*) FROM T", options=JobOptions(sample_block_ratio=0.01))
    assert tiny.rows()[0][0] > 0  # at least one block always scans


# -- cancellation ----------------------------------------------------------------


def test_cancel_running_job():
    from repro.errors import QueryCancelled

    cluster = _cluster()
    job, done = cluster.submit("SELECT SUM(b) FROM T WHERE a >= 0")
    assert cluster.master.cancel(job.job_id)
    cluster.sim.run_until_complete(done)
    assert isinstance(job.error, QueryCancelled)
    # the ledger recorded the cancellation as a failure
    assert cluster.job_ledger.get(job.job_id).status == "failed"
    # outstanding task processes finish harmlessly
    cluster.sim.run(until=cluster.sim.now + 5.0)
    # and the cluster still works
    assert cluster.query("SELECT COUNT(*) FROM T").num_rows == 1


def test_cancel_queued_job():
    from repro.errors import QueryCancelled

    cluster = _cluster()
    cluster.master.max_concurrent_jobs = 1
    _j1, d1 = cluster.submit("SELECT SUM(b) FROM T WHERE a >= 0")
    j2, d2 = cluster.submit("SELECT SUM(b) FROM T WHERE a >= 1")
    assert cluster.master.queued_jobs == 1
    assert cluster.master.cancel(j2.job_id)
    assert cluster.master.queued_jobs == 0
    cluster.sim.run_until_complete(d2)
    assert isinstance(j2.error, QueryCancelled)
    cluster.sim.run_until_complete(d1)  # the first job is unaffected


def test_cancel_unknown_or_finished():
    cluster = _cluster()
    job = cluster.query_job("SELECT COUNT(*) FROM T")
    assert not cluster.master.cancel(job.job_id)  # already finished
    assert not cluster.master.cancel("job-9999")


# -- stragglers and backup tasks (§III-C) -------------------------------------------


def _degrade_busiest(cluster, table_name="T", factor=2000.0):
    from collections import Counter

    table = cluster.catalog.get(table_name)
    holders = Counter()
    for ref in table.blocks:
        system, inner = cluster.router.resolve(ref.path)
        for addr in system.locations(inner):
            holders[addr] += 1
    cluster.leaf_at(holders.most_common(1)[0][0]).slow_down(factor)


def test_backup_tasks_beat_a_straggler():
    slow_with = _cluster()
    slow_without = _cluster()
    for cluster in (slow_with, slow_without):
        # degrade the busiest replica-holding node massively
        _degrade_busiest(cluster)
    sql = "SELECT SUM(b) FROM T WHERE a >= 0"
    with_backups = slow_with.query_job(sql)
    without = slow_without.query_job(sql, options=JobOptions(enable_backup=False))
    assert with_backups.result.rows()[0][0] == pytest.approx(without.result.rows()[0][0])
    if with_backups.stats.backups_launched > 0:
        # speculative copies rescued the straggler's tasks
        assert (
            with_backups.stats.response_time_s < without.stats.response_time_s
        )
        assert any(t.backup for t in with_backups.task_timeline)


def test_slow_down_restore_round_trip():
    cluster = _cluster()
    leaf = cluster.leaves[0]
    before = leaf.disk.bandwidth_bps
    leaf.slow_down(10.0)
    assert leaf.disk.bandwidth_bps == pytest.approx(before / 10)
    leaf.restore_speed(10.0)
    assert leaf.disk.bandwidth_bps == pytest.approx(before)
    with pytest.raises(ClusterStateError):
        leaf.slow_down(0.0)


def test_cancelled_queued_job_has_full_ledger_context():
    cluster = _cluster()
    cluster.master.max_concurrent_jobs = 1
    cluster.submit("SELECT SUM(b) FROM T WHERE a >= 0")
    j2, d2 = cluster.submit("SELECT SUM(b) FROM T WHERE a >= 1")
    cluster.master.cancel(j2.job_id)
    entry = cluster.job_ledger.get(j2.job_id)
    assert entry.user == "analyst"            # submission context preserved
    assert "a >= 1" in entry.sql
    assert entry.status == "failed"
