"""Per-replica heterogeneous layouts — "Trojan" replicas (S54).

Covers the spec/meta round-trip, the pure rewrite, the storage variant
overlay (publish, fall-back, invalidation), the daemon's census-driven
layout decisions and idempotent publish-after-write cycle, and the
cluster end-to-end path: flag off means no daemon and no trace change;
flag on rewrites replicas, routes reads to them, keeps answers exact,
and surfaces the served layout in EXPLAIN ANALYZE.
"""

import numpy as np
import pytest

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.client import FeisuClient
from repro.cluster.node import LeafConfig
from repro.columnar.block import Block
from repro.errors import StorageError
from repro.planner.cnf import AtomicPredicate, Clause, ConjunctiveForm
from repro.sim.events import Simulator
from repro.sim.netmodel import NetworkTopology, TopologySpec
from repro.sql.ast import BinaryOperator
from repro.storage.layouts import (
    LayoutDaemon,
    LayoutSpec,
    apply_layout,
    sorted_candidate_rows,
)
from repro.storage.router import StorageRouter
from repro.storage.systems import DistributedFS

from tests.conftest import CLICKS_SCHEMA, make_clicks_columns

FACT_SCHEMA = Schema.of(
    k=DataType.INT64, v=DataType.FLOAT64, w=DataType.INT64, note=DataType.STRING
)


def _block(block_id="b0", n=200, seed=0, scale_factor=1.0):
    rng = np.random.default_rng(seed)
    arrays = {
        "k": rng.integers(0, 10, n),
        "v": rng.random(n),
        "w": rng.integers(0, 100, n),
        "note": np.array([f"n{i % 5}" for i in range(n)], dtype=object),
    }
    return Block.from_arrays(block_id, FACT_SCHEMA, arrays, scale_factor=scale_factor)


def _cnf(column="w", op=BinaryOperator.LT, value=50):
    return ConjunctiveForm([Clause((AtomicPredicate(column, op, value),))])


def _rows(block, columns):
    return sorted(zip(*(block.column(c).tolist() for c in columns)))


# -- LayoutSpec -----------------------------------------------------------


def test_spec_meta_round_trip():
    spec = LayoutSpec(
        sort_column="w", columns=("k", "v", "w"), index_column="w",
        copartition_column="k",
    )
    assert LayoutSpec.from_meta(spec.to_meta()) == spec
    assert LayoutSpec.from_meta(None) is None
    assert LayoutSpec.from_meta({}) is None
    assert LayoutSpec().is_base and LayoutSpec().describe() == "base"
    assert spec.describe() == "sorted(w)+copart(k)+cols(k,v,w)+btree(w)"


def test_spec_serves_projection():
    spec = LayoutSpec(columns=("k", "v"))
    assert spec.serves(("k",)) and spec.serves(("k", "v"))
    assert not spec.serves(("k", "w"))
    assert LayoutSpec(sort_column="w").serves(("anything", "at", "all"))


def test_spec_narrowed_to_block_columns():
    spec = LayoutSpec(sort_column="w", columns=("k", "ghost"), index_column="gone")
    narrowed = spec.narrowed_to(["k", "v", "w"])
    # Unknown columns drop; the sort column is force-kept in the projection.
    assert narrowed.index_column is None
    assert narrowed.sort_column == "w"
    assert narrowed.columns == ("k", "w")
    # Projection covering every block column collapses to "all columns".
    full = LayoutSpec(columns=("k", "v", "w", "extra")).narrowed_to(["k", "v", "w"])
    assert full.columns is None


# -- apply_layout ---------------------------------------------------------


def test_apply_layout_sorts_and_projects():
    block = _block(scale_factor=7.0)
    spec = LayoutSpec(sort_column="w", columns=("k", "v", "w"))
    variant = apply_layout(block, spec)
    assert variant.block_id == block.block_id
    assert variant.scale_factor == block.scale_factor
    assert variant.num_rows == block.num_rows
    assert set(variant.chunks) == {"k", "v", "w"}
    w = variant.column("w")
    assert (w[:-1] <= w[1:]).all()
    # Same rows, permuted: the multiset over the kept columns is intact.
    assert _rows(variant, ("k", "v", "w")) == _rows(block, ("k", "v", "w"))


def test_apply_layout_round_trips_through_bytes():
    block = _block()
    spec = LayoutSpec(copartition_column="k")
    variant = Block.from_bytes(apply_layout(block, spec).to_bytes())
    k = variant.column("k")
    assert (k[:-1] <= k[1:]).all()
    assert _rows(variant, ("k", "v", "w")) == _rows(block, ("k", "v", "w"))


# -- sorted_candidate_rows ------------------------------------------------


def test_sorted_candidate_rows_exact_counts():
    block = apply_layout(_block(), LayoutSpec(sort_column="w"))
    w = block.column("w")
    assert sorted_candidate_rows(block, "w", _cnf(value=50)) == int((w < 50).sum())
    assert sorted_candidate_rows(
        block, "w", _cnf(op=BinaryOperator.GE, value=90)
    ) == int((w >= 90).sum())
    assert sorted_candidate_rows(
        block, "w", _cnf(op=BinaryOperator.EQ, value=7)
    ) == int((w == 7).sum())


def test_sorted_candidate_rows_none_when_unprunable():
    block = apply_layout(_block(), LayoutSpec(sort_column="w"))
    assert sorted_candidate_rows(block, "w", _cnf(column="k")) is None
    assert sorted_candidate_rows(block, "missing", _cnf()) is None
    # Incomparable literal: searchsorted raises TypeError → no pruning.
    assert sorted_candidate_rows(block, "w", _cnf(value="fifty")) is None


# -- storage variant overlay ----------------------------------------------


NODES = TopologySpec(1, 2, 4).addresses()


def _fs():
    return DistributedFS(NODES, seed=3)


def test_variant_overlay_publish_and_fallback():
    fs = _fs()
    fs.write("/t/b0", b"base-bytes")
    holders = fs.locations("/t/b0")
    fs.set_replica_variant("/t/b0", holders[1], b"variant", meta={"spec": {}})
    assert fs.variant_nodes("/t/b0") == [holders[1]]
    assert fs.read_replica("/t/b0", holders[1]) == b"variant"
    assert fs.read_replica("/t/b0", holders[0]) == b"base-bytes"
    assert fs.replica_meta("/t/b0", holders[1]) == {"spec": {}}
    assert fs.replica_variant("/t/b0", holders[0]) is None
    # The base payload is authoritative regardless of variants.
    assert fs.read("/t/b0") == b"base-bytes"
    outsider = next(n for n in NODES if n not in holders)
    with pytest.raises(StorageError):
        fs.set_replica_variant("/t/b0", outsider, b"nope")


def test_variant_invalidated_by_write_delete_and_replica_loss():
    fs = _fs()
    fs.write("/t/b0", b"one")
    holders = fs.locations("/t/b0")
    fs.set_replica_variant("/t/b0", holders[1], b"v1")
    fs.write("/t/b0", b"two")  # rewrite: derived variants are stale
    assert fs.variant_nodes("/t/b0") == []
    fs.set_replica_variant("/t/b0", fs.locations("/t/b0")[1], b"v2")
    dropped = fs.locations("/t/b0")[1]
    fs.drop_replica("/t/b0", dropped)
    assert dropped not in fs.variant_nodes("/t/b0")
    fs.set_replica_variant("/t/b0", fs.locations("/t/b0")[0], b"v3")
    fs.delete("/t/b0")
    assert fs.variant_nodes("/t/b0") == []


# -- LayoutDaemon units ---------------------------------------------------


def _layout_env(**daemon_kwargs):
    sim = Simulator()
    spec = TopologySpec(1, 2, 4)
    net = NetworkTopology(sim, spec)
    router = StorageRouter()
    fs = DistributedFS(spec.addresses(), seed=3)
    router.register(fs, default=True)
    daemon_kwargs.setdefault("period_s", 10.0)
    daemon = LayoutDaemon(sim, net, router, **daemon_kwargs)
    return sim, net, router, fs, daemon


def _feed_census(daemon, path, times=3, join=("k",), now=0.0):
    for _ in range(times):
        daemon.record_scan(
            path, _cnf(), ("k", "v", "w"), join_columns=join, nbytes=100, now=now
        )


def test_desired_layouts_from_census():
    sim, net, router, fs, daemon = _layout_env()
    fs.write("/t/b0", _block().to_bytes())
    _feed_census(daemon, "/hdfs/t/b0")
    replicas = fs.locations("/t/b0")
    desired = daemon.desired_layouts("/hdfs/t/b0")
    assert replicas[0] not in desired  # replica 0 always stays base
    assert desired[replicas[1]] == LayoutSpec(sort_column="w", columns=("k", "v", "w"))
    assert desired[replicas[2]] == LayoutSpec(
        columns=("k", "v", "w"), index_column="w", copartition_column="k"
    )


def test_desired_layouts_without_join_attaches_index_only():
    sim, net, router, fs, daemon = _layout_env()
    fs.write("/t/b0", _block().to_bytes())
    _feed_census(daemon, "/hdfs/t/b0", join=())
    replicas = fs.locations("/t/b0")
    desired = daemon.desired_layouts("/hdfs/t/b0")
    assert desired[replicas[2]] == LayoutSpec(columns=("k", "v", "w"), index_column="w")
    assert desired[replicas[2]].copartition_column is None


def test_desired_layouts_needs_evidence_and_replicas():
    sim, net, router, fs, daemon = _layout_env(min_evidence=5)
    fs.write("/t/b0", _block().to_bytes())
    _feed_census(daemon, "/hdfs/t/b0", times=2)  # below the evidence floor
    assert daemon.desired_layouts("/hdfs/t/b0") == {}
    assert daemon.desired_layouts("/hdfs/missing") == {}


def test_run_once_rewrites_one_replica_per_cycle_then_adopts():
    sim, net, router, fs, daemon = _layout_env()
    block = _block()
    fs.write("/t/b0", block.to_bytes())
    replicas = fs.locations("/t/b0")
    _feed_census(daemon, "/hdfs/t/b0")  # heat 3 >= threshold 2.0
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.rewrites == 1
    assert fs.variant_nodes("/t/b0") == [replicas[1]]
    meta = fs.replica_meta("/t/b0", replicas[1])
    assert LayoutSpec.from_meta(meta).sort_column == "w"
    assert meta["num_rows"] == block.num_rows
    assert set(meta["column_bytes"]) == {"k", "v", "w"}
    lo, hi = meta["order_range"]
    assert lo <= hi
    # The published variant decodes, is sorted, and holds the same rows.
    variant = Block.from_bytes(fs.replica_variant("/t/b0", replicas[1]))
    w = variant.column("w")
    assert (w[:-1] <= w[1:]).all()
    assert _rows(variant, ("k", "v", "w")) == _rows(block, ("k", "v", "w"))
    # The copy traffic was charged to the fabric.
    assert sum(ln.bytes_carried for ln in net.links()) >= len(variant.to_bytes())
    # Cycle two rewrites the block's other eligible replica...
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.rewrites == 2
    assert set(fs.variant_nodes("/t/b0")) == {replicas[1], replicas[2]}
    # ...and cycle three adopts the published state without re-copying.
    carried = sum(ln.bytes_carried for ln in net.links())
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.rewrites == 2
    assert sum(ln.bytes_carried for ln in net.links()) == carried


def test_run_once_skips_cold_and_deleted_paths():
    sim, net, router, fs, daemon = _layout_env(heat_threshold=100.0)
    fs.write("/t/b0", _block().to_bytes())
    _feed_census(daemon, "/hdfs/t/b0")  # hot enough for census, not for heat
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.rewrites == 0
    daemon.heat_threshold = 2.0
    fs.delete("/t/b0")
    sim.run_until_complete(sim.process(daemon.run_once()))
    assert daemon.stats.rewrites == 0


def test_payload_for_serves_variant_only_when_projection_covers():
    sim, net, router, fs, daemon = _layout_env()
    fs.write("/t/b0", _block().to_bytes())
    replicas = fs.locations("/t/b0")
    _feed_census(daemon, "/hdfs/t/b0")
    sim.run_until_complete(sim.process(daemon.run_once()))
    node = replicas[1]
    payload, spec = daemon.payload_for(fs, "/t/b0", node, ("k", "w"))
    assert spec is not None and spec.sort_column == "w"
    assert payload == fs.replica_variant("/t/b0", node)
    assert daemon.stats.variant_reads == 1
    # "note" is outside the projection: fall back to the base payload.
    payload, spec = daemon.payload_for(fs, "/t/b0", node, ("note",))
    assert spec is None and payload == fs.read("/t/b0")
    assert daemon.stats.ineligible_reads == 1
    # A base replica serves base bytes without touching the counters.
    payload, spec = daemon.payload_for(fs, "/t/b0", replicas[0], ("k",))
    assert spec is None and payload == fs.read("/t/b0")


def test_scheduler_scores_variant_replicas_cheaper():
    sim, net, router, fs, daemon = _layout_env()
    fs.write("/t/b0", _block(n=2000).to_bytes())
    replicas = fs.locations("/t/b0")
    _feed_census(daemon, "/hdfs/t/b0")
    for _ in range(2):
        sim.run_until_complete(sim.process(daemon.run_once()))

    class _Task:
        block = type(
            "B",
            (),
            {
                "path": "/hdfs/t/b0",
                "block_id": "b0",
                "bytes_for": staticmethod(
                    lambda cols: Block.from_bytes(fs.read("/t/b0")).column_bytes(cols)
                ),
                "scale_factor": 1.0,
                "modeled_rows": 2000.0,
            },
        )()
        columns = ("k", "v", "w")

    task = _Task()
    cnf = _cnf(value=10)  # selective range on the sort column
    base_s = daemon.scan_seconds(task, cnf, replicas[0])
    sorted_s = daemon.scan_seconds(task, cnf, replicas[1])
    indexed_s = daemon.scan_seconds(task, cnf, replicas[2])
    assert sorted_s < base_s  # range pruning + projection beat the full read
    assert indexed_s < base_s  # covered probe beats the full read
    assert daemon.replica_bytes(task, replicas[1]) < task.block.bytes_for(
        task.columns
    )


# -- cluster end-to-end ---------------------------------------------------


def _layout_cluster():
    return FeisuCluster(
        FeisuConfig(
            datacenters=1,
            racks_per_datacenter=2,
            nodes_per_rack=4,
            leaf=LeafConfig(enable_smartindex=False, enable_layouts=True),
        )
    )


def test_flag_off_constructs_no_daemon(fresh_cluster):
    assert fresh_cluster.layouts is None
    assert fresh_cluster.scheduler.layouts is None
    fresh_cluster.create_user("nolayout", admin=True)
    client = FeisuClient(fresh_cluster, "nolayout")
    text = client.explain_analyze("SELECT COUNT(*) FROM T WHERE c1 < 50")
    assert "actual layout:" not in text


def test_cluster_layouts_end_to_end():
    cluster = _layout_cluster()
    columns = make_clicks_columns(3000, seed=11)
    cluster.load_table("T", CLICKS_SCHEMA, columns, storage="storage-a", block_rows=1000)
    expected = int((columns["c1"] < 50).sum())
    sql = "SELECT COUNT(*) AS n FROM T WHERE c1 < 50"
    for _ in range(3):
        assert cluster.query(sql).rows()[0][0] == expected
    for _ in range(2):
        cluster.sim.run_until_complete(cluster.sim.process(cluster.layouts.run_once()))
    assert cluster.layouts.stats.rewrites >= 1
    # Answers unchanged after the rewrites, and routing reaches a variant.
    assert cluster.query(sql).rows()[0][0] == expected
    assert cluster.layouts.stats.variant_reads >= 1
    cluster.create_user("lay", admin=True)
    client = FeisuClient(cluster, "lay")
    text = client.explain_analyze(sql)
    assert "actual layout:" in text
    # Routing picked a non-base copy (sorted or btree-covered variant).
    assert "sorted(c1)" in text or "btree(c1)" in text


def test_cluster_layouts_join_answers_unchanged():
    cluster = _layout_cluster()
    columns = make_clicks_columns(3000, seed=11)
    cluster.load_table("T", CLICKS_SCHEMA, columns, storage="storage-a", block_rows=1000)
    dim = {
        "c2": np.arange(10),
        "label": np.array([f"grp{i}" for i in range(10)], dtype=object),
    }
    cluster.load_table(
        "D",
        Schema.of(c2=DataType.INT64, label=DataType.STRING),
        dim,
        storage="storage-b",
        block_rows=100,
    )
    sql = (
        "SELECT label AS g, COUNT(*) AS n FROM T JOIN D ON T.c2 = D.c2 "
        "WHERE c1 < 70 GROUP BY g ORDER BY g"
    )
    before = cluster.query(sql).rows()
    for _ in range(3):
        cluster.query(sql)
    for _ in range(2):
        cluster.sim.run_until_complete(cluster.sim.process(cluster.layouts.run_once()))
    assert cluster.layouts.stats.rewrites >= 1
    assert cluster.query(sql).rows() == before
