"""Cluster manager liveness tracking and primary/backup failover."""

import pytest

from repro.cluster.failover import PrimaryBackup
from repro.cluster.membership import (
    HEARTBEAT_PERIOD_S,
    MISSED_LIMIT,
    ClusterManager,
)
from repro.cluster.messages import WorkerLoad
from repro.errors import ClusterStateError
from repro.sim.events import Simulator
from repro.sim.netmodel import NodeAddress


def test_register_and_duplicate():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", NodeAddress(0, 0, 0))
    with pytest.raises(ClusterStateError):
        cm.register("w0", NodeAddress(0, 0, 1))
    with pytest.raises(ClusterStateError):
        cm.heartbeat("unknown", WorkerLoad())


def test_heartbeat_keeps_alive():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", NodeAddress(0, 0, 0))
    sim.schedule(HEARTBEAT_PERIOD_S * MISSED_LIMIT, lambda: cm.heartbeat("w0", WorkerLoad()))
    sim.run()
    assert cm.sweep() == []
    assert cm.is_alive("w0")


def test_missed_heartbeats_mark_dead():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", NodeAddress(0, 0, 0))
    sim.schedule(HEARTBEAT_PERIOD_S * MISSED_LIMIT + 1, lambda: None)
    sim.run()
    assert cm.sweep() == ["w0"]
    assert not cm.is_alive("w0")
    assert cm.sweep() == []  # reported once


def test_heartbeat_revives():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("w0", NodeAddress(0, 0, 0))
    sim.schedule(100.0, lambda: None)
    sim.run()
    cm.sweep()
    cm.heartbeat("w0", WorkerLoad(running_tasks=2))
    assert cm.is_alive("w0")
    assert cm.load_of("w0").running_tasks == 2


def test_live_workers_filtering():
    sim = Simulator()
    cm = ClusterManager(sim)
    cm.register("leaf0", NodeAddress(0, 0, 0))
    cm.register("stem0", NodeAddress(0, 0, 1), is_stem=True)
    assert {w.worker_id for w in cm.live_workers()} == {"leaf0", "stem0"}
    assert [w.worker_id for w in cm.live_workers(stems=True)] == ["stem0"]
    assert [w.worker_id for w in cm.live_workers(stems=False)] == ["leaf0"]


def test_worker_load_pressure_ordering():
    idle = WorkerLoad()
    busy = WorkerLoad(running_tasks=4, queued_tasks=2, disk_queue_s=1.0)
    assert busy.pressure > idle.pressure


# -- primary/backup failover (§III-C reliability) ---------------------------


def _counter_ops():
    def add(state, n):
        state["total"] = state.get("total", 0) + n

    return add


def test_primary_backup_basic_replication():
    sim = Simulator()
    pb = PrimaryBackup(sim, dict, "jobmgr")
    add = _counter_ops()
    for i in range(10):
        pb.apply(add, i)
    assert pb.state["total"] == sum(range(10))
    pb.sync_shadow()
    assert pb.monitoring_state()["total"] == sum(range(10))
    assert pb.shadow_lag_ops == 0


def test_shadow_lag_bounded():
    sim = Simulator()
    pb = PrimaryBackup(sim, dict, "jobmgr")
    add = _counter_ops()
    for i in range(100):
        pb.apply(add, 1)
    assert pb.shadow_lag_ops <= 32


def test_failover_loses_nothing():
    sim = Simulator()
    pb = PrimaryBackup(sim, dict, "jobmgr")
    add = _counter_ops()
    for _ in range(50):
        pb.apply(add, 2)
    pb.fail_primary()
    assert pb.failovers == 1
    assert pb.state["total"] == 100  # shadow replayed the full log
    # writes continue against the promoted primary
    pb.apply(add, 1)
    assert pb.state["total"] == 101


def test_failover_without_shadow_fatal():
    sim = Simulator()
    pb = PrimaryBackup(sim, dict, "x")
    pb.fail_primary()
    with pytest.raises(ClusterStateError):
        pb.fail_primary()
    with pytest.raises(ClusterStateError):
        _ = pb.state


def test_new_shadow_bootstraps_from_log():
    sim = Simulator()
    pb = PrimaryBackup(sim, dict, "x")
    add = _counter_ops()
    for _ in range(5):
        pb.apply(add, 3)
    pb.fail_primary()
    pb.start_new_shadow()
    pb.fail_primary()  # second failover onto the fresh shadow
    assert pb.state["total"] == 15
