"""Client-end: syntax checking, access verification, history, preferences."""

import pytest

from repro.client import FeisuClient
from repro.errors import AccessDeniedError, ParseError


@pytest.fixture()
def client(fresh_cluster):
    fresh_cluster.create_user("dev", admin=True)
    return FeisuClient(fresh_cluster, "dev")


def test_syntax_check_ok(client):
    assert client.check_syntax("SELECT COUNT(*) FROM T").ok


def test_syntax_check_reports_position_and_hint(client):
    report = client.check_syntax("SELECT a")
    assert not report.ok
    assert "FROM" in report.message
    report2 = client.check_syntax("SELECT a, FROM T")
    assert not report2.ok


def test_query_raises_on_bad_syntax(client):
    with pytest.raises(ParseError):
        client.query("SELEC x FROM T")


def test_query_executes_and_records_history(client):
    r = client.query("SELECT COUNT(*) FROM T WHERE c2 > 3")
    assert r.num_rows == 1
    assert len(client.history) == 1
    entry = client.history.entries()[0]
    assert entry.tables == ("T",)
    assert "c2 > 3" in entry.predicate_keys


def test_access_verification_client_side(fresh_cluster):
    fresh_cluster.create_user("nogruniversal")  # no grants at all
    client = FeisuClient(fresh_cluster, "nogruniversal")
    with pytest.raises(AccessDeniedError):
        client.query("SELECT COUNT(*) FROM T")


def test_frequent_predicates_ranking(client):
    for _ in range(3):
        client.query("SELECT COUNT(*) FROM T WHERE c2 > 5")
    client.query("SELECT COUNT(*) FROM T WHERE c1 = 7")
    frequent = client.history.frequent_predicates("dev", top=2)
    assert frequent[0] == ("c2 > 5", 3)


def test_install_preferences_pins_on_all_leaves(client):
    for _ in range(2):
        client.query("SELECT COUNT(*) FROM T WHERE c2 > 5")
    keys = client.install_preferences(top=1)
    assert keys == ["c2 > 5"]
    for leaf in client.cluster.leaves:
        entries = [
            e
            for e in leaf.index_manager._entries.values()  # noqa: SLF001
            if e.predicate_key == "c2 > 5"
        ]
        assert all(e.preferred for e in entries)


def test_format_table_layout(client):
    r = client.query("SELECT c2, COUNT(*) n FROM T GROUP BY c2 ORDER BY c2 LIMIT 3")
    text = client.format_table(r)
    lines = text.splitlines()
    assert lines[0].startswith("c2")
    assert "-+-" in lines[1]
    assert len(lines) == 5


def test_format_table_truncates(client):
    r = client.query("SELECT c1 FROM T LIMIT 30")
    text = client.format_table(r, max_rows=5)
    assert "more rows" in text


def test_frequent_columns(client):
    client.query("SELECT c1 FROM T WHERE c2 > 1 LIMIT 1")
    cols = dict(client.history.frequent_columns("dev"))
    assert "c1" in cols and "c2" in cols


def test_history_since_filter(client):
    client.query("SELECT COUNT(*) FROM T")
    later = client.cluster.sim.now + 1000.0
    assert client.history.entries("dev", since=later) == []
