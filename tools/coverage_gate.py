#!/usr/bin/env python
"""Dependency-free line-coverage gate for the cluster, engine, fault, gateway, index, planner and storage layers.

The container has no ``coverage``/``pytest-cov``, so this implements the
minimum honestly: a ``sys.settrace`` hook records executed lines in
``repro.cluster``, ``repro.engine``, ``repro.faults``, ``repro.gateway``,
``repro.index``, ``repro.planner`` and ``repro.storage`` while the
focused test suites run in-process, the denominator comes from each
module's compiled ``co_lines()`` tables, and the gate fails if combined
coverage drops below the floor.

Run from the repo root (the verify flow does):

    python tools/coverage_gate.py            # enforce the 80% floor
    python tools/coverage_gate.py --report   # per-file detail, no gate

The tracer must be installed *before* the target packages are imported so
module-level statements (imports, class/def lines, dataclass fields)
count as executed — this script therefore always runs as its own process.
"""

import argparse
import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

#: Packages under the gate.
TARGET_DIRS = (
    os.path.join(SRC, "repro", "cluster") + os.sep,
    os.path.join(SRC, "repro", "engine") + os.sep,
    os.path.join(SRC, "repro", "faults") + os.sep,
    os.path.join(SRC, "repro", "gateway") + os.sep,
    os.path.join(SRC, "repro", "index") + os.sep,
    os.path.join(SRC, "repro", "planner") + os.sep,
    os.path.join(SRC, "repro", "storage") + os.sep,
)

#: Test files that exercise the gated packages.
TEST_ARGS = [
    "tests/chaos",
    "tests/test_cluster_domains.py",
    "tests/test_cluster_features.py",
    "tests/test_cluster_jobs_unit.py",
    "tests/test_cluster_master.py",
    "tests/test_cluster_membership.py",
    "tests/test_cluster_node.py",
    "tests/test_cluster_scheduler.py",
    "tests/test_cluster_state_fixes.py",
    "tests/test_elastic.py",
    "tests/test_membership.py",
    "tests/test_engine_aggregates.py",
    "tests/test_engine_executor.py",
    "tests/test_engine_operators.py",
    "tests/test_engine_pipeline.py",
    "tests/test_engine_serialize.py",
    "tests/test_adaptive_differential.py",
    "tests/test_gateway.py",
    "tests/test_gateway_differential.py",
    "tests/test_integration_differential.py",
    "tests/test_index_bitmap.py",
    "tests/test_index_btree.py",
    "tests/test_index_smartindex.py",
    "tests/test_semantic_index_property.py",
    "tests/test_soak_chaos.py",
    "tests/test_ssd_cache.py",
    "tests/test_ssd_cache_property.py",
    "tests/test_storage_router.py",
    "tests/test_storage_systems.py",
    "tests/test_storage_tiering.py",
    "tests/test_storage_layouts.py",
    "tests/test_layout_property.py",
    "tests/test_new_features.py",
]

FLOOR = 0.80

_hits = {}


def _line_tracer(frame, event, arg):
    if event == "line":
        _hits[frame.f_code.co_filename].add(frame.f_lineno)
    return _line_tracer


def _call_tracer(frame, event, arg):
    if event == "call":
        filename = frame.f_code.co_filename
        if filename.startswith(TARGET_DIRS):
            _hits.setdefault(filename, set()).add(frame.f_lineno)
            return _line_tracer
    return None


def _executable_lines(path):
    """Line numbers the compiler marks executable, from every code object
    reachable in the module, minus explicit ``pragma: no cover`` lines."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(c for c in code.co_consts if hasattr(c, "co_lines"))
    for i, text in enumerate(source.splitlines(), start=1):
        if "pragma: no cover" in text:
            lines.discard(i)
    # The module code object charges its docstring/firstline; a line that
    # is only a string literal or comment is not meaningfully executable.
    for i, text in enumerate(source.splitlines(), start=1):
        stripped = text.strip()
        if stripped.startswith(('"""', "'''", "#")) or not stripped:
            lines.discard(i)
    return lines


def _target_files():
    out = []
    for base in TARGET_DIRS:
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", action="store_true", help="detail only, no gate")
    parser.add_argument("--floor", type=float, default=FLOOR)
    args = parser.parse_args()

    os.chdir(ROOT)
    sys.path.insert(0, SRC)

    threading.settrace(_call_tracer)
    sys.settrace(_call_tracer)
    try:
        import pytest

        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *TEST_ARGS])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"coverage gate: traced test run failed (pytest exit {exit_code})")
        return int(exit_code)

    total_exec = 0
    total_hit = 0
    rows = []
    for path in _target_files():
        executable = _executable_lines(path)
        hit = _hits.get(path, set()) & executable
        missed = sorted(executable - hit)
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        rows.append((os.path.relpath(path, ROOT), len(executable), len(hit), pct, missed))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'file':<{width}}  lines  hit   cover")
    for rel, n_exec, n_hit, pct, missed in rows:
        print(f"{rel:<{width}}  {n_exec:>5}  {n_hit:>4}  {pct:5.1f}%")
        if args.report and missed:
            print(f"{'':<{width}}  missed: {_ranges(missed)}")
    overall = total_hit / total_exec if total_exec else 1.0
    print(f"\nTOTAL repro.cluster + repro.engine + repro.faults + repro.gateway + repro.index + repro.planner + repro.storage: {100.0 * overall:.1f}% "
          f"({total_hit}/{total_exec} lines), floor {100.0 * args.floor:.4g}%")
    if args.report:
        return 0
    if overall < args.floor:
        print("coverage gate: FAIL — add tests or justify exclusions")
        return 1
    print("coverage gate: OK")
    return 0


def _ranges(lines):
    """Compact "12-15, 40, 52-53" rendering of missed line numbers."""
    spans = []
    start = prev = lines[0]
    for n in lines[1:] + [None]:
        if n is not None and n == prev + 1:
            prev = n
            continue
        spans.append(f"{start}-{prev}" if prev > start else f"{start}")
        if n is not None:
            start = prev = n
    return ", ".join(spans)


if __name__ == "__main__":
    sys.exit(main())
