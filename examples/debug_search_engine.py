#!/usr/bin/env python
"""Case 1 (§II): debugging the search engine across storage systems.

A system engineer chases a spike of HTTP 500s.  The evidence is spread
across *three* storage domains — exactly the situation that motivated
Feisu:

* fresh service logs on each online machine's **local filesystem**
  (nested json, flattened to columns on ingest);
* the crawled-page table on the **HDFS-like** global store;
* operator annotations in the **KV label store**.

One SQL endpoint queries all of them; no data is copied into a central
warehouse first.

Run with::

    python examples/debug_search_engine.py
"""

import numpy as np

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.client import FeisuClient
from repro.workload.loggen import LogIngestor


def main() -> None:
    cluster = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4))
    cluster.create_user("sysadmin", admin=True)
    client = FeisuClient(cluster, "sysadmin")

    # --- substrate 1: service logs stay on the producing nodes -----------
    ingestor = LogIngestor(cluster, table_name="service_logs")
    for hour in range(6):
        ingestor.ingest_hour(hour, records_per_node=400, seed=4)
    print(f"ingested {ingestor.table.num_rows} log rows across {len(cluster.nodes)} nodes' local FS\n")

    # --- substrate 2: the page table on the global HDFS-like store -------
    rng = np.random.default_rng(7)
    n_pages = 40  # one metadata row per crawled page
    pages = {
        "page": np.array([f"/p{i}" for i in range(n_pages)], dtype=object),
        "owner_service": np.array(
            [["search", "maps", "baike"][i % 3] for i in range(n_pages)], dtype=object
        ),
        "size_kb": rng.integers(1, 500, n_pages),
    }
    cluster.load_table(
        "pages",
        Schema.of(page=DataType.STRING, owner_service=DataType.STRING, size_kb=DataType.INT64),
        pages,
        storage="storage-a",
        block_rows=64,
    )

    # --- step 1: which hour went bad? ------------------------------------
    print("== 500s per hour (node-local logs, no centralization) ==")
    by_hour = client.query(
        "SELECT hour, COUNT(*) AS errors FROM service_logs "
        "WHERE request.status = 500 GROUP BY hour ORDER BY hour"
    )
    print(client.format_table(by_hour), "\n")

    # --- step 2: drill down, trial-and-error (this is what SmartIndex
    # accelerates: each refinement reuses the previous predicates) --------
    print("== Worst pages in the bad hours ==")
    worst = client.query(
        "SELECT request.page AS page, COUNT(*) AS errors "
        "FROM service_logs WHERE request.status = 500 AND hour >= 3 "
        "GROUP BY page ORDER BY errors DESC LIMIT 5"
    )
    print(client.format_table(worst), "\n")

    # --- step 3: join against the page table on a different system -------
    print("== Which service owns the failing pages? ==")
    owners = client.query(
        "SELECT owner_service, COUNT(*) AS failing_requests "
        "FROM service_logs JOIN pages ON request.page = pages.page "
        "WHERE request.status = 500 "
        "GROUP BY owner_service ORDER BY failing_requests DESC"
    )
    print(client.format_table(owners), "\n")

    # --- step 4: latency check on the suspect service's traffic ----------
    print("== Latency profile for 'search'-owned pages ==")
    latency = client.query(
        "SELECT AVG(latency_ms) AS avg_ms, MAX(latency_ms) AS worst_ms, COUNT(*) AS requests "
        "FROM service_logs JOIN pages ON request.page = pages.page "
        "WHERE owner_service = 'search'"
    )
    print(client.format_table(latency), "\n")

    stats = cluster.aggregate_index_stats()
    print(
        f"SmartIndex during the investigation: {stats.hits + stats.complement_hits} hits / "
        f"{stats.lookups} lookups (drill-down sessions repeat predicates, §IV-A)"
    )


if __name__ == "__main__":
    main()
