#!/usr/bin/env python
"""Operations view: replay a production-shaped trace, watch the cluster.

Combines three pieces the paper's operators relied on:

* the §IV-A drill-down workload generator producing a timed trace;
* the replay harness driving it through the cluster with real arrival
  gaps on the simulated clock (so index TTLs and cache churn behave);
* the monitoring surface (§III-C: shadows serve "monitoring running
  information") summarizing device, network, index and job health.

Run with::

    python examples/trace_replay_monitoring.py
"""

from repro import FeisuCluster, FeisuConfig
from repro.workload.datasets import DatasetSpec, load_paper_datasets
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.replay import TraceReplayer


def main() -> None:
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=8))
    spec = DatasetSpec("T1", 16_000, 12, "storage-a", 16_000 * 1500, seed=101)
    tables = load_paper_datasets(cluster, [spec], block_rows=2048)

    gen = WorkloadGenerator(
        "T1",
        tables["T1"].schema,
        WorkloadConfig(num_users=10, think_time_s=400.0, seed=55, aggregate_fraction=0.8),
        value_ranges={"click_count": (0, 50), "position": (1, 10), "user_id": (0, 5000)},
        contains_values={"url": [f"site{i}" for i in range(5)]},
    )
    trace = gen.generate(4 * 3600.0)[:120]
    print(f"replaying {len(trace)} queries from {len({q.user for q in trace})} analysts "
          f"over a simulated {trace[-1].at_s / 3600:.1f} h window...\n")

    replayer = TraceReplayer(cluster, time_compression=1.0)
    report = replayer.replay(trace)

    times = sorted(report.response_times())
    print("== service profile ==")
    print(f"  queries:      {report.count} ({report.success_ratio():.0%} ok)")
    print(f"  median:       {report.percentile(0.5) * 1000:8.1f} ms")
    print(f"  p95:          {report.percentile(0.95) * 1000:8.1f} ms")
    print(f"  worst:        {times[-1] * 1000:8.1f} ms")

    m = cluster.metrics()
    print("\n== cluster monitoring snapshot ==")
    for key, value in m.as_dict().items():
        if isinstance(value, float) and not float(value).is_integer():
            print(f"  {key:36s} {value:12.4f}")
        else:
            print(f"  {key:36s} {value:12g}")

    stats = cluster.aggregate_index_stats()
    print(
        f"\nSmartIndex across the trace: {stats.hits + stats.complement_hits}"
        f"/{stats.lookups} lookups hit "
        f"({stats.creations} entries created, {stats.evictions_ttl} TTL evictions)"
    )


if __name__ == "__main__":
    main()
