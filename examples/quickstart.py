#!/usr/bin/env python
"""Quickstart: spin up a simulated Feisu cluster, load a table, query it.

Run with::

    python examples/quickstart.py

Demonstrates the core loop — load columnar data onto a storage
substrate, issue SQL through the client, and watch SmartIndex make the
second identical query dramatically cheaper.
"""

import numpy as np

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.client import FeisuClient


def main() -> None:
    # A one-datacenter cluster: 2 racks x 8 nodes, every node a leaf server.
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=8))

    # Synthesize a click-log style table and load it onto the HDFS-like
    # storage system (it lands as replicated columnar blocks).
    rng = np.random.default_rng(0)
    n = 50_000
    schema = Schema.of(
        user_id=DataType.INT64,
        province=DataType.STRING,
        url=DataType.STRING,
        clicks=DataType.INT64,
        dwell=DataType.FLOAT64,
    )
    provinces = np.array(
        [["beijing", "shanghai", "guangdong", "sichuan"][i % 4] for i in range(n)], dtype=object
    )
    columns = {
        "user_id": rng.integers(0, 10_000, n),
        "province": provinces,
        "url": np.array([f"http://site{i % 20}.example.com/p{i % 7}" for i in range(n)], dtype=object),
        "clicks": np.minimum(rng.zipf(2.0, n), 500).astype(np.int64),
        "dwell": rng.exponential(20.0, n),
    }
    cluster.load_table("clicklog", schema, columns, storage="storage-a", block_rows=4096)

    # The client checks syntax and access rights before anything hits the
    # master, then records history for SmartIndex personalization.
    cluster.create_user("demo", admin=True)
    client = FeisuClient(cluster, "demo")

    print("== Top provinces by clicks ==")
    result = client.query(
        "SELECT province, SUM(clicks) AS total, AVG(dwell) AS avg_dwell "
        "FROM clicklog WHERE clicks > 1 "
        "GROUP BY province ORDER BY total DESC"
    )
    print(client.format_table(result))
    print(f"(simulated response time: {result.stats['response_time_s'] * 1000:.1f} ms)\n")

    print("== Same filter again: SmartIndex covers the scan ==")
    again = client.query(
        "SELECT COUNT(*) AS heavy_rows FROM clicklog WHERE clicks > 1"
    )
    print(client.format_table(again))
    print(
        f"(response: {again.stats['response_time_s'] * 1000:.1f} ms, "
        f"index-covered tasks: {again.stats['index_full_covers']}/{again.stats['tasks_total']})\n"
    )

    print("== Negated variant reuses the same index via bit-NOT ==")
    negated = client.query("SELECT COUNT(*) AS light_rows FROM clicklog WHERE NOT (clicks > 1)")
    print(client.format_table(negated))
    print(f"(index-covered tasks: {negated.stats['index_full_covers']}/{negated.stats['tasks_total']})\n")

    stats = cluster.aggregate_index_stats()
    print(
        f"cluster SmartIndex totals: {stats.hits} hits, {stats.complement_hits} "
        f"complement hits, {stats.misses} misses, {stats.creations} entries created"
    )


if __name__ == "__main__":
    main()
