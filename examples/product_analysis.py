#!/usr/bin/env python
"""Case 3 (§II): product analysis over hot + cold storage.

A data engineer builds a revenue/tendency report that must combine:

* the **current quarter's** click log on the HDFS-like hot store, and
* **historical archives** on Fatman, the cold volunteer-resource store
  (2 replicas scattered across datacenters, large first-byte latency,
  one Feisu task slot per node so business traffic is never starved).

The same SQL runs against both; Feisu's per-system service profiles keep
the cold scans from monopolizing the archive nodes, and the response
times show the hot/cold asymmetry.

Run with::

    python examples/product_analysis.py
"""

import numpy as np

from repro import DataType, FeisuCluster, FeisuConfig, JobOptions, Schema
from repro.client import FeisuClient

SCHEMA = Schema.of(
    quarter=DataType.STRING,
    product=DataType.STRING,
    province=DataType.STRING,
    revenue=DataType.FLOAT64,
    sessions=DataType.INT64,
)


def make_quarter(name: str, n: int, seed: int, boom_product: str) -> dict:
    rng = np.random.default_rng(seed)
    products = np.array(
        [["web-search", "maps", "cloud", "encyclopedia"][i % 4] for i in range(n)], dtype=object
    )
    revenue = rng.gamma(2.0, 3.0, n)
    revenue[products == boom_product] *= 1.8  # this product is taking off
    return {
        "quarter": np.array([name] * n, dtype=object),
        "product": products,
        "province": np.array(
            [["beijing", "shanghai", "guangdong"][i % 3] for i in range(n)], dtype=object
        ),
        "revenue": revenue,
        "sessions": np.minimum(rng.zipf(1.8, n), 5000).astype(np.int64),
    }


def main() -> None:
    cluster = FeisuCluster(FeisuConfig(datacenters=2, racks_per_datacenter=2, nodes_per_rack=4))
    cluster.create_user("analyst", admin=True)
    client = FeisuClient(cluster, "analyst")

    # Hot data: the running quarter, on the HDFS-like store.
    cluster.load_table(
        "biz_current", SCHEMA, make_quarter("2017Q1", 30_000, seed=1, boom_product="cloud"),
        storage="storage-a", block_rows=4096,
    )
    # Cold data: last year's quarters, archived on Fatman.
    archive = {
        name: arr
        for name, arr in make_quarter("2016Q1", 40_000, seed=2, boom_product="maps").items()
    }
    cluster.load_table("biz_archive", SCHEMA, archive, storage="fatman", block_rows=4096)

    print("== Current quarter: revenue by product (hot storage) ==")
    hot = client.query(
        "SELECT product, SUM(revenue) AS total, COUNT(*) AS rows FROM biz_current "
        "GROUP BY product ORDER BY total DESC"
    )
    print(client.format_table(hot))
    hot_ms = hot.stats["response_time_s"] * 1000
    print(f"(hot response: {hot_ms:.1f} ms)\n")

    print("== Year-ago quarter: same report against the cold archive ==")
    cold = client.query(
        "SELECT product, SUM(revenue) AS total, COUNT(*) AS rows FROM biz_archive "
        "GROUP BY product ORDER BY total DESC"
    )
    print(client.format_table(cold))
    cold_ms = cold.stats["response_time_s"] * 1000
    print(f"(cold response: {cold_ms:.1f} ms — {cold_ms / max(hot_ms, 1e-9):.1f}x the hot store;")
    print(" Fatman pays first-byte latency and runs one Feisu task per node)\n")

    print("== Tendency: who grew year over year? ==")
    for product in ("web-search", "maps", "cloud", "encyclopedia"):
        now = client.query(
            f"SELECT SUM(revenue) AS r FROM biz_current WHERE product = '{product}'"
        ).rows()[0][0]
        then = client.query(
            f"SELECT SUM(revenue) AS r FROM biz_archive WHERE product = '{product}'"
        ).rows()[0][0]
        now_rate = now / 30_000
        then_rate = then / 40_000
        print(f"  {product:13s}: {then_rate:7.3f} -> {now_rate:7.3f} rev/session-row "
              f"({(now_rate / then_rate - 1) * 100:+.1f}%)")
    print()

    print("== Long-tail control: archive scan with a response-time budget ==")
    job = cluster.query_job(
        "SELECT province, AVG(revenue) AS avg_rev FROM biz_archive GROUP BY province ORDER BY province",
        user="analyst",
        options=JobOptions(max_time_s=0.35, min_processed_ratio=0.3),
    )
    result = job.result
    print(client.format_table(result))
    print(
        f"(returned after processing {result.processed_ratio:.0%} of the archive "
        f"within the {0.35:.2f}s budget — §III-C's long-tail escape hatch)"
    )


if __name__ == "__main__":
    main()
