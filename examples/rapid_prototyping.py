#!/usr/bin/env python
"""Case 2 (§II): rapid product prototyping.

Before Feisu, "one round of the data preparation process would cost
almost one week": product engineers had to learn each storage system's
interface and coordinate extractions.  With Feisu, demarcating a user
cohort for a new voice-search product is just iterative SQL — and
because iteration repeats predicates, SmartIndex makes every round
cheaper (the client can even pin the product's predicates as private
index preferences).

Run with::

    python examples/rapid_prototyping.py
"""

import numpy as np

from repro import DataType, FeisuCluster, FeisuConfig, Schema
from repro.client import FeisuClient


def main() -> None:
    cluster = FeisuCluster(FeisuConfig(datacenters=1, racks_per_datacenter=2, nodes_per_rack=8))
    cluster.create_user("pm", admin=True)
    client = FeisuClient(cluster, "pm")

    # User-behaviour data, as produced by the logging pipeline.
    rng = np.random.default_rng(11)
    n = 60_000
    behaviour = {
        "user_id": rng.integers(0, 20_000, n),
        "device": np.array([["mobile", "desktop", "tablet"][i % 3] for i in range(n)], dtype=object),
        "query_text": np.array(
            [f"{['weather', 'music', 'navigate', 'call'][i % 4]} q{i % 50}" for i in range(n)],
            dtype=object,
        ),
        "voice_ready": rng.integers(0, 2, n).astype(bool),
        "session_len_s": rng.exponential(90.0, n),
        "age_bucket": rng.integers(1, 7, n),
    }
    cluster.load_table(
        "behaviour",
        Schema.of(
            user_id=DataType.INT64,
            device=DataType.STRING,
            query_text=DataType.STRING,
            voice_ready=DataType.BOOL,
            session_len_s=DataType.FLOAT64,
            age_bucket=DataType.INT64,
        ),
        behaviour,
        storage="storage-a",
        block_rows=4096,
    )

    # Round 1: how big is the naive target population?
    print("== Round 1: mobile users at all ==")
    r1 = client.query("SELECT COUNT(*) AS rows FROM behaviour WHERE device = 'mobile'")
    print(client.format_table(r1), "\n")

    # Round 2: narrow to voice-suitable intents.  Note the repeated
    # `device = 'mobile'` predicate — a SmartIndex hit on every block.
    print("== Round 2: + voice-ish queries ==")
    r2 = client.query(
        "SELECT COUNT(*) AS rows FROM behaviour "
        "WHERE device = 'mobile' AND (query_text CONTAINS 'navigate' OR query_text CONTAINS 'call')"
    )
    print(client.format_table(r2), "\n")

    # Round 3: require hardware support and engaged sessions.
    print("== Round 3: + voice-ready hardware, engaged sessions ==")
    r3 = client.query(
        "SELECT age_bucket, COUNT(*) AS cohort, AVG(session_len_s) AS avg_session "
        "FROM behaviour "
        "WHERE device = 'mobile' AND (query_text CONTAINS 'navigate' OR query_text CONTAINS 'call') "
        "AND voice_ready = TRUE AND session_len_s > 30 "
        "GROUP BY age_bucket ORDER BY cohort DESC LIMIT 3"
    )
    print(client.format_table(r3), "\n")

    rounds = [r1, r2, r3]
    print("Per-round cost (repeated predicates hit the index per block):")
    for i, r in enumerate(rounds, 1):
        hits = r.stats["index_clause_hits"]
        lookups = hits + r.stats["index_clause_misses"]
        print(
            f"  round {i}: {r.stats['response_time_s'] * 1000:7.1f} ms, "
            f"modeled scan {r.stats['io_bytes_modeled'] / 1e6:8.1f} MB, "
            f"index clause hits {hits}/{lookups}"
        )

    # The PM ships the cohort definition to the team: pin its predicates
    # so nightly re-runs stay fast even under cache pressure.
    pinned = client.install_preferences(top=3)
    print(f"\npinned private-index predicates for user 'pm': {pinned}")


if __name__ == "__main__":
    main()
